//! Parametric partition plans: plan once **symbolically**, instantiate
//! per problem size.
//!
//! The paper's whole derivation — dependence equations (§2.2), pair
//! lattices (§2.3), the PDM (§2.4), Algorithm 1, and the Theorem-2
//! partitioning — reads only the array **subscripts**, never the loop
//! bounds. The bounds enter exactly once, at the final Fourier–Motzkin
//! step that re-bounds the transformed space. A service answering many
//! problem sizes of one kernel therefore wastes almost all of its
//! planning time re-deriving size-independent facts.
//!
//! [`plan_template`] splits the pipeline on that line:
//!
//! * **Template** (once per nest *shape*): analysis, transformation,
//!   partitioning, **and** the transformed-space bounds with the nest's
//!   named parameters carried as live columns through elimination
//!   ([`pdm_poly::bounds::LoopBounds::from_system_parametric`]). The FM
//!   runs — the expensive, potentially exponential part — happen here.
//! * **Instantiate** ([`PlanTemplate::instantiate`], once per size):
//!   fold a parameter valuation into the symbolic bound rows
//!   ([`pdm_poly::bounds::LoopBounds::substitute_params`]) and assemble
//!   a [`ParallelPlan`]. One pass over the rows — **no dependence
//!   testing, no Fourier–Motzkin, no planning** — and the result is the
//!   same type the concrete pipeline produces, so every downstream
//!   consumer (codegen, executors, the race checker) works unchanged.
//!
//! Soundness: the template's transformation is legal for every valuation
//! because legality (Theorem 1) is a property of `H·T` alone, and the
//! parametric bound rows are exact for every valuation because FM
//! elimination never touches the parameter columns (see
//! [`pdm_poly::fm`]'s parameter-column notes). The differential suite
//! (`tests/template_vs_concrete.rs`) pins instantiation to the concrete
//! path — same groups, same evaluated bound rows, same execution
//! results — on randomized parametric nests.
//!
//! ```
//! use pdm_core::template::plan_template;
//! use pdm_loopir::parse::parse_loop_symbolic;
//!
//! let shape = parse_loop_symbolic(
//!     "for i1 = 0..=N { for i2 = 0..=N {
//!        A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
//!     } }",
//!     &["N"],
//! ).unwrap();
//! let template = plan_template(&shape).unwrap();     // all FM happens here
//! for n in [9i64, 99] {
//!     let plan = template.instantiate(&[("N", n)]).unwrap(); // no FM
//!     assert_eq!(plan.doall_count(), 1);
//!     assert_eq!(plan.partition_count(), 2);
//! }
//! ```

use crate::partition::Partitioning;
use crate::pdm::{analyze, PdmAnalysis};
use crate::plan::{derive_structure, ParallelPlan, PlanStructure};
use crate::{CoreError, Result};
use pdm_loopir::nest::LoopNest;
use pdm_loopir::IrError;
use pdm_matrix::mat::IMat;
use pdm_matrix::unimodular::Unimodular;
use pdm_matrix::vec::IVec;
use pdm_poly::bounds::LoopBounds;
use pdm_poly::expr::AffineExpr;
use pdm_poly::system::System;

/// A parallel schedule computed once per nest **shape**: the complete
/// bounds-independent plan structure plus transformed-space bound rows
/// that still carry the nest's parameter columns. Instantiate per size
/// with [`PlanTemplate::instantiate`].
#[derive(Debug, Clone)]
pub struct PlanTemplate {
    nest: LoopNest,
    analysis: PdmAnalysis,
    transform: Unimodular,
    inverse: Unimodular,
    transformed_pdm: IMat,
    doall_prefix: usize,
    partition: Option<Partitioning>,
    /// Parametric transformed-space bounds (`params() == #parameters`).
    bounds: LoopBounds,
}

/// Plan a (symbolic or concrete) nest once: full analysis,
/// transformation, partitioning, and parametric Fourier–Motzkin bounds.
/// On a concrete nest the template degenerates gracefully — zero
/// parameter columns, and `instantiate(&[])` reproduces
/// [`crate::plan::parallelize`]'s plan.
pub fn plan_template(nest: &LoopNest) -> Result<PlanTemplate> {
    let analysis = analyze(nest)?;
    plan_template_from_analysis(nest, analysis)
}

/// [`plan_template`] from an existing analysis (mirrors
/// [`crate::plan::plan_from_analysis`]).
pub fn plan_template_from_analysis(nest: &LoopNest, analysis: PdmAnalysis) -> Result<PlanTemplate> {
    let n = nest.depth();
    let structure = derive_structure(n, &analysis)?;
    let tsys = transformed_symbolic_system(nest, &structure.inverse)?;
    let bounds = LoopBounds::from_system_parametric(&tsys, n).map_err(CoreError::Matrix)?;
    Ok(PlanTemplate {
        nest: nest.clone(),
        analysis,
        transform: structure.transform,
        inverse: structure.inverse,
        transformed_pdm: structure.transformed_pdm,
        doall_prefix: structure.doall_prefix,
        partition: structure.partition,
        bounds,
    })
}

/// The symbolic iteration polyhedron rewritten into transformed
/// coordinates: index columns map through `T⁻¹` exactly as in
/// [`crate::plan::transformed_system`], parameter columns map to
/// themselves (the transformation acts on iteration space only).
pub fn transformed_symbolic_system(nest: &LoopNest, inverse: &Unimodular) -> Result<System> {
    let n = nest.depth();
    let p = nest.param_names().len();
    let w = n + p;
    let sys = nest.symbolic_system()?;
    let mut exprs = Vec::with_capacity(w);
    for i in 0..n {
        let mut col = inverse.mat().col_vec(i).0;
        col.resize(w, 0);
        exprs.push(AffineExpr::new(IVec(col), 0));
    }
    for j in 0..p {
        exprs.push(AffineExpr::var(w, n + j));
    }
    sys.change_of_variables(&exprs, w)
        .map_err(CoreError::Matrix)
}

impl PlanTemplate {
    /// The symbolic nest shape the template was planned from.
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    /// Parameter names, in the bound-column order valuations are folded.
    pub fn param_names(&self) -> &[String] {
        self.nest.param_names()
    }

    /// The underlying PDM analysis (size-independent).
    pub fn analysis(&self) -> &PdmAnalysis {
        &self.analysis
    }

    /// The legal unimodular transformation `T` (`y = i·T`).
    pub fn transform(&self) -> &Unimodular {
        &self.transform
    }

    /// Number of leading fully-parallel (`doall`) transformed loops.
    pub fn doall_count(&self) -> usize {
        self.doall_prefix
    }

    /// Independent partitions of the sequential block (1 when none) —
    /// `det(H)` of the trailing full-rank block, size-independent.
    pub fn partition_count(&self) -> i64 {
        self.partition.as_ref().map_or(1, |p| p.count())
    }

    /// Loop depth.
    pub fn depth(&self) -> usize {
        self.nest.depth()
    }

    /// The parametric transformed-space bound rows (trailing parameter
    /// columns; see [`pdm_poly::bounds::LoopBounds::params`]).
    pub fn symbolic_bounds(&self) -> &LoopBounds {
        &self.bounds
    }

    /// Was the template planned **speculatively** — do any array
    /// subscripts read a symbolic parameter? The static analysis saw
    /// only the parameter-free hull of those accesses, so every
    /// instantiation must be audited by the runtime inspector before
    /// the parallel plan may run (`pdm_runtime::inspector`).
    pub fn requires_inspection(&self) -> bool {
        self.nest.has_parametric_accesses()
    }

    /// Order a `(name, value)` valuation into bound-column order,
    /// validating exactly like [`LoopNest::substitute`]: every parameter
    /// must be bound (else [`IrError::UnboundParameter`]), unknown names
    /// are rejected.
    fn param_values(&self, params: &[(&str, i64)]) -> Result<Vec<i64>> {
        let names = self.nest.param_names();
        for (name, _) in params {
            if !names.iter().any(|p| p == name) {
                return Err(CoreError::Ir(IrError::Invalid(format!(
                    "instantiate: '{name}' is not a parameter of this template"
                ))));
            }
        }
        names
            .iter()
            .map(|p| {
                params
                    .iter()
                    .find(|(name, _)| name == p)
                    .map(|&(_, v)| v)
                    .ok_or_else(|| CoreError::Ir(IrError::UnboundParameter { name: p.clone() }))
            })
            .collect()
    }

    /// Instantiate the template at a parameter valuation: fold the
    /// valuation into the symbolic bound rows and assemble a complete
    /// [`ParallelPlan`]. Cheap — one pass over the bound rows plus
    /// clones of the fixed-size structure; no dependence testing, no
    /// Fourier–Motzkin, no planning.
    pub fn instantiate(&self, params: &[(&str, i64)]) -> Result<ParallelPlan> {
        let vals = self.param_values(params)?;
        let bounds = self
            .bounds
            .substitute_params(&vals)
            .map_err(CoreError::Matrix)?;
        Ok(ParallelPlan::from_parts(
            self.analysis.clone(),
            PlanStructure {
                transform: self.transform.clone(),
                inverse: self.inverse.clone(),
                transformed_pdm: self.transformed_pdm.clone(),
                doall_prefix: self.doall_prefix,
                partition: self.partition.clone(),
            },
            bounds,
            self.nest.depth(),
        ))
    }

    /// Lower the template's nest at the same valuation — the concrete
    /// nest an executor pairs with [`PlanTemplate::instantiate`]'s plan.
    pub fn instantiate_nest(&self, params: &[(&str, i64)]) -> Result<LoopNest> {
        self.nest.substitute(params).map_err(CoreError::Ir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::parallelize;
    use pdm_loopir::parse::{parse_loop, parse_loop_symbolic, parse_loop_with};

    const PAPER41: &str = "for i1 = 0..=N { for i2 = 0..=N {
        A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
    } }";

    #[test]
    fn template_plans_the_paper_nest_once_for_all_sizes() {
        let shape = parse_loop_symbolic(PAPER41, &["N"]).unwrap();
        let t = plan_template(&shape).unwrap();
        assert_eq!(t.doall_count(), 1);
        assert_eq!(t.partition_count(), 2);
        assert_eq!(t.symbolic_bounds().params(), 1);
        for n in [3i64, 9, 40] {
            let inst = t.instantiate(&[("N", n)]).unwrap();
            let conc = parallelize(&parse_loop_with(PAPER41, &[("N", n)]).unwrap()).unwrap();
            assert_eq!(inst.transform(), conc.transform());
            assert_eq!(inst.doall_count(), conc.doall_count());
            assert_eq!(inst.partition_count(), conc.partition_count());
            assert_eq!(
                inst.bounds().enumerate().unwrap(),
                conc.bounds().enumerate().unwrap(),
                "N={n}"
            );
        }
    }

    #[test]
    fn concrete_nests_degenerate_to_the_plain_pipeline() {
        let nest = parse_loop("for i = 1..=10 { A[i] = A[i - 1] + 1; }").unwrap();
        let t = plan_template(&nest).unwrap();
        assert_eq!(t.param_names(), &[] as &[String]);
        let inst = t.instantiate(&[]).unwrap();
        let conc = parallelize(&nest).unwrap();
        assert_eq!(inst.bounds(), conc.bounds());
        assert_eq!(inst.transform(), conc.transform());
    }

    #[test]
    fn instantiate_validates_the_valuation() {
        let shape = parse_loop_symbolic(PAPER41, &["N"]).unwrap();
        let t = plan_template(&shape).unwrap();
        assert!(matches!(
            t.instantiate(&[]),
            Err(CoreError::Ir(IrError::UnboundParameter { .. }))
        ));
        assert!(t.instantiate(&[("N", 5), ("M", 5)]).is_err());
    }

    #[test]
    fn empty_valuations_instantiate_to_empty_spaces() {
        let shape = parse_loop_symbolic(PAPER41, &["N"]).unwrap();
        let t = plan_template(&shape).unwrap();
        let inst = t.instantiate(&[("N", -1)]).unwrap();
        assert_eq!(inst.bounds().enumerate().unwrap().len(), 0);
        let nest = t.instantiate_nest(&[("N", -1)]).unwrap();
        assert_eq!(nest.iterations().unwrap().len(), 0);
    }

    #[test]
    fn triangular_symbolic_template_matches_concrete() {
        let src = "for i = 0..=N { for j = 0..=i { A[i, j] = A[j, i] + 1; } }";
        let shape = parse_loop_symbolic(src, &["N"]).unwrap();
        let t = plan_template(&shape).unwrap();
        for n in [0i64, 1, 6] {
            let inst = t.instantiate(&[("N", n)]).unwrap();
            let conc = parallelize(&parse_loop_with(src, &[("N", n)]).unwrap()).unwrap();
            assert_eq!(
                inst.bounds().enumerate().unwrap(),
                conc.bounds().enumerate().unwrap(),
                "N={n}"
            );
        }
    }
}
