//! Parametric partition plans: plan once **symbolically**, instantiate
//! per problem size.
//!
//! The paper's whole derivation — dependence equations (§2.2), pair
//! lattices (§2.3), the PDM (§2.4), Algorithm 1, and the Theorem-2
//! partitioning — reads only the array **subscripts**, never the loop
//! bounds. The bounds enter exactly once, at the final Fourier–Motzkin
//! step that re-bounds the transformed space. A service answering many
//! problem sizes of one kernel therefore wastes almost all of its
//! planning time re-deriving size-independent facts.
//!
//! [`plan_template`] splits the pipeline on that line:
//!
//! * **Template** (once per nest *shape*): analysis, transformation,
//!   partitioning, **and** the transformed-space bounds with the nest's
//!   named parameters carried as live columns through elimination
//!   ([`pdm_poly::bounds::LoopBounds::from_system_parametric`]). The FM
//!   runs — the expensive, potentially exponential part — happen here.
//! * **Instantiate** ([`PlanTemplate::instantiate`], once per size):
//!   fold a parameter valuation into the symbolic bound rows
//!   ([`pdm_poly::bounds::LoopBounds::substitute_params`]) and assemble
//!   a [`ParallelPlan`]. One pass over the rows — **no dependence
//!   testing, no Fourier–Motzkin, no planning** — and the result is the
//!   same type the concrete pipeline produces, so every downstream
//!   consumer (codegen, executors, the race checker) works unchanged.
//!
//! Soundness: the template's transformation is legal for every valuation
//! because legality (Theorem 1) is a property of `H·T` alone, and the
//! parametric bound rows are exact for every valuation because FM
//! elimination never touches the parameter columns (see
//! [`pdm_poly::fm`]'s parameter-column notes). The differential suite
//! (`tests/template_vs_concrete.rs`) pins instantiation to the concrete
//! path — same groups, same evaluated bound rows, same execution
//! results — on randomized parametric nests.
//!
//! ```
//! use pdm_core::template::plan_template;
//! use pdm_loopir::parse::parse_loop_symbolic;
//!
//! let shape = parse_loop_symbolic(
//!     "for i1 = 0..=N { for i2 = 0..=N {
//!        A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
//!     } }",
//!     &["N"],
//! ).unwrap();
//! let template = plan_template(&shape).unwrap();     // all FM happens here
//! for n in [9i64, 99] {
//!     let plan = template.instantiate(&[("N", n)]).unwrap(); // no FM
//!     assert_eq!(plan.doall_count(), 1);
//!     assert_eq!(plan.partition_count(), 2);
//! }
//! ```

use crate::partition::Partitioning;
use crate::pdm::{analyze, PdmAnalysis};
use crate::plan::{derive_structure, ParallelPlan, PlanStructure};
use crate::{CoreError, Result};
use pdm_loopir::nest::LoopNest;
use pdm_loopir::IrError;
use pdm_matrix::mat::IMat;
use pdm_matrix::unimodular::Unimodular;
use pdm_matrix::vec::IVec;
use pdm_poly::bounds::LoopBounds;
use pdm_poly::expr::AffineExpr;
use pdm_poly::system::System;

/// A parallel schedule computed once per nest **shape**: the complete
/// bounds-independent plan structure plus transformed-space bound rows
/// that still carry the nest's parameter columns. Instantiate per size
/// with [`PlanTemplate::instantiate`].
#[derive(Debug, Clone)]
pub struct PlanTemplate {
    nest: LoopNest,
    analysis: PdmAnalysis,
    transform: Unimodular,
    inverse: Unimodular,
    transformed_pdm: IMat,
    doall_prefix: usize,
    partition: Option<Partitioning>,
    /// Parametric transformed-space bounds (`params() == #parameters`).
    bounds: LoopBounds,
}

/// Plan a (symbolic or concrete) nest once: full analysis,
/// transformation, partitioning, and parametric Fourier–Motzkin bounds.
/// On a concrete nest the template degenerates gracefully — zero
/// parameter columns, and `instantiate(&[])` reproduces
/// [`crate::plan::parallelize`]'s plan.
pub fn plan_template(nest: &LoopNest) -> Result<PlanTemplate> {
    let analysis = analyze(nest)?;
    plan_template_from_analysis(nest, analysis)
}

/// [`plan_template`] from an existing analysis (mirrors
/// [`crate::plan::plan_from_analysis`]).
pub fn plan_template_from_analysis(nest: &LoopNest, analysis: PdmAnalysis) -> Result<PlanTemplate> {
    let n = nest.depth();
    let structure = derive_structure(n, &analysis)?;
    let tsys = transformed_symbolic_system(nest, &structure.inverse)?;
    let bounds = LoopBounds::from_system_parametric(&tsys, n).map_err(CoreError::Matrix)?;
    Ok(PlanTemplate {
        nest: nest.clone(),
        analysis,
        transform: structure.transform,
        inverse: structure.inverse,
        transformed_pdm: structure.transformed_pdm,
        doall_prefix: structure.doall_prefix,
        partition: structure.partition,
        bounds,
    })
}

/// The symbolic iteration polyhedron rewritten into transformed
/// coordinates: index columns map through `T⁻¹` exactly as in
/// [`crate::plan::transformed_system`], parameter columns map to
/// themselves (the transformation acts on iteration space only).
pub fn transformed_symbolic_system(nest: &LoopNest, inverse: &Unimodular) -> Result<System> {
    let n = nest.depth();
    let p = nest.param_names().len();
    let w = n + p;
    let sys = nest.symbolic_system()?;
    let mut exprs = Vec::with_capacity(w);
    for i in 0..n {
        let mut col = inverse.mat().col_vec(i).0;
        col.resize(w, 0);
        exprs.push(AffineExpr::new(IVec(col), 0));
    }
    for j in 0..p {
        exprs.push(AffineExpr::var(w, n + j));
    }
    sys.change_of_variables(&exprs, w)
        .map_err(CoreError::Matrix)
}

impl PlanTemplate {
    /// The symbolic nest shape the template was planned from.
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    /// Parameter names, in the bound-column order valuations are folded.
    pub fn param_names(&self) -> &[String] {
        self.nest.param_names()
    }

    /// The underlying PDM analysis (size-independent).
    pub fn analysis(&self) -> &PdmAnalysis {
        &self.analysis
    }

    /// The legal unimodular transformation `T` (`y = i·T`).
    pub fn transform(&self) -> &Unimodular {
        &self.transform
    }

    /// Number of leading fully-parallel (`doall`) transformed loops.
    pub fn doall_count(&self) -> usize {
        self.doall_prefix
    }

    /// Independent partitions of the sequential block (1 when none) —
    /// `det(H)` of the trailing full-rank block, size-independent.
    pub fn partition_count(&self) -> i64 {
        self.partition.as_ref().map_or(1, |p| p.count())
    }

    /// Loop depth.
    pub fn depth(&self) -> usize {
        self.nest.depth()
    }

    /// The parametric transformed-space bound rows (trailing parameter
    /// columns; see [`pdm_poly::bounds::LoopBounds::params`]).
    pub fn symbolic_bounds(&self) -> &LoopBounds {
        &self.bounds
    }

    /// Was the template planned **speculatively** — do any array
    /// subscripts read a symbolic parameter? The static analysis saw
    /// only the parameter-free hull of those accesses, so every
    /// instantiation must be audited by the runtime inspector before
    /// the parallel plan may run (`pdm_runtime::inspector`).
    pub fn requires_inspection(&self) -> bool {
        self.nest.has_parametric_accesses()
    }

    /// Order a `(name, value)` valuation into bound-column order,
    /// validating exactly like [`LoopNest::substitute`]: every parameter
    /// must be bound (else [`IrError::UnboundParameter`]), unknown names
    /// are rejected.
    fn param_values(&self, params: &[(&str, i64)]) -> Result<Vec<i64>> {
        let names = self.nest.param_names();
        for (name, _) in params {
            if !names.iter().any(|p| p == name) {
                return Err(CoreError::Ir(IrError::Invalid(format!(
                    "instantiate: '{name}' is not a parameter of this template"
                ))));
            }
        }
        names
            .iter()
            .map(|p| {
                params
                    .iter()
                    .find(|(name, _)| name == p)
                    .map(|&(_, v)| v)
                    .ok_or_else(|| CoreError::Ir(IrError::UnboundParameter { name: p.clone() }))
            })
            .collect()
    }

    /// Instantiate the template at a parameter valuation: fold the
    /// valuation into the symbolic bound rows and assemble a complete
    /// [`ParallelPlan`]. Cheap — one pass over the bound rows plus
    /// clones of the fixed-size structure; no dependence testing, no
    /// Fourier–Motzkin, no planning.
    pub fn instantiate(&self, params: &[(&str, i64)]) -> Result<ParallelPlan> {
        let vals = self.param_values(params)?;
        let bounds = self
            .bounds
            .substitute_params(&vals)
            .map_err(CoreError::Matrix)?;
        Ok(ParallelPlan::from_parts(
            self.analysis.clone(),
            PlanStructure {
                transform: self.transform.clone(),
                inverse: self.inverse.clone(),
                transformed_pdm: self.transformed_pdm.clone(),
                doall_prefix: self.doall_prefix,
                partition: self.partition.clone(),
            },
            bounds,
            self.nest.depth(),
        ))
    }

    /// Lower the template's nest at the same valuation — the concrete
    /// nest an executor pairs with [`PlanTemplate::instantiate`]'s plan.
    pub fn instantiate_nest(&self, params: &[(&str, i64)]) -> Result<LoopNest> {
        self.nest.substitute(params).map_err(CoreError::Ir)
    }

    /// The **stability box** of the inspector verdict at `params`: a
    /// per-parameter interval vector (ordered like
    /// [`PlanTemplate::param_names`]; `i64::MIN`/`i64::MAX` encode
    /// unbounded sides) such that *every* valuation inside the box
    /// provably audits to the same verdict as `params` — or `None`
    /// when no such box can be certified and the verdict must be
    /// cached per point.
    ///
    /// Why this is sound: the audit's verdict is a function of (a) the
    /// walk geometry — groups, walk order — and (b) the *equality
    /// relation* on access instances (which `(iteration, access)`
    /// pairs touch the same cell). The box is built so both are
    /// valuation-invariant inside it:
    ///
    /// * (a) holds whenever the transformed bound rows and guards read
    ///   no parameter ([`pdm_poly::bounds::LoopBounds::reads_params`])
    ///   — the iteration set, grouping, and walk order are then
    ///   literally identical at every valuation.
    /// * (b) two occurrences of accesses `a`, `b` on one array collide
    ///   at iterations `i`, `i'` iff for every subscript `r`:
    ///   `(v·D)_r = (i'·A_b − i·A_a + b_b − b_a)_r` where
    ///   `D = P_a − P_b`. The right side ranges over a box `S_r`
    ///   computed *exactly* from the enumerated (guard-filtered)
    ///   iteration points. If at the audited valuation some row `r`
    ///   has `(v·D)_r ∉ S_r`, the pair collides **nowhere**, and the
    ///   box constrains the parameters to keep that row excluded. A
    ///   pair with `D = 0` collides identically at every valuation and
    ///   constrains nothing. If some variable pair (`D ≠ 0`) has *no*
    ///   excluding row, the equality relation may shift with the
    ///   valuation — return `None`.
    ///
    /// Note read–read pairs are **not** skipped: a read–read collision
    /// changes the audit's touch-class structure (which cells merge),
    /// so it too must stay invariant across the box.
    ///
    /// Conservative by construction (the box excludes the same rows,
    /// it never proves a *different* verdict), and exact enough in
    /// practice: for `A[i + K] = A[i]` over `i ∈ 0..=19` at `K = 25`
    /// it certifies `K ∈ [20, ∞)`.
    pub fn stability_box(&self, params: &[(&str, i64)]) -> Result<Option<Vec<(i64, i64)>>> {
        let p = self.param_names().len();
        if p == 0 || !self.requires_inspection() {
            return Ok(None);
        }
        if self.bounds.reads_params() {
            return Ok(None);
        }
        let vals = self.param_values(params)?;
        // Valuation-independent by the reads_params check above; any
        // valuation would enumerate the same points.
        let nest_v = self.instantiate_nest(params)?;
        let pts = nest_v.iterations().map_err(CoreError::Ir)?;
        let mut boxes: Vec<(i64, i64)> = vec![(i64::MIN, i64::MAX); p];
        if pts.is_empty() {
            // Empty spaces audit identically (trivially certified)
            // everywhere.
            return Ok(Some(boxes));
        }

        // Access occurrences with exact per-subscript envelopes of
        // i·A over the statement's guarded iteration points. The
        // symbolic accesses carry (A, b, P); guards read indices only.
        struct Occ<'a> {
            array: usize,
            access: &'a pdm_loopir::access::AffineAccess,
            ranges: Vec<(i128, i128)>,
        }
        let mut occs: Vec<Occ<'_>> = Vec::new();
        for stmt in self.nest.body() {
            let guarded: Vec<&IVec> = pts.iter().filter(|i| stmt.guards_hold(&i.0)).collect();
            if guarded.is_empty() {
                continue;
            }
            for (_, r) in stmt.accesses() {
                let a = &r.access;
                let ranges = (0..a.dims())
                    .map(|col| {
                        let mut lo = i128::MAX;
                        let mut hi = i128::MIN;
                        for i in &guarded {
                            let v: i128 = (0..a.depth())
                                .map(|k| a.matrix.get(k, col) as i128 * i.0[k] as i128)
                                .sum();
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                        (lo, hi)
                    })
                    .collect();
                occs.push(Occ {
                    array: r.array.0,
                    access: a,
                    ranges,
                });
            }
        }

        // Parameter coefficient of q_k in subscript col of (P_a - P_b);
        // canonically-empty params matrices read as zero.
        let dcoef = |a: &pdm_loopir::access::AffineAccess,
                     b: &pdm_loopir::access::AffineAccess,
                     k: usize,
                     col: usize| {
            let pa = if k < a.params.rows() {
                a.params.get(k, col)
            } else {
                0
            };
            let pb = if k < b.params.rows() {
                b.params.get(k, col)
            } else {
                0
            };
            pa - pb
        };

        for ai in 0..occs.len() {
            for bi in ai + 1..occs.len() {
                let (oa, ob) = (&occs[ai], &occs[bi]);
                if oa.array != ob.array {
                    continue;
                }
                let m = oa.access.dims();
                if (0..p).all(|k| (0..m).all(|col| dcoef(oa.access, ob.access, k, col) == 0)) {
                    continue; // collides identically at every valuation
                }
                // Candidate excluding rows at the audited valuation.
                struct Row {
                    coeffs: Vec<i64>,
                    above: bool,
                    s_lo: i128,
                    s_hi: i128,
                    lhs: i128,
                }
                let mut rows: Vec<Row> = Vec::new();
                for col in 0..m {
                    let coeffs: Vec<i64> = (0..p)
                        .map(|k| dcoef(oa.access, ob.access, k, col))
                        .collect();
                    if coeffs.iter().all(|&c| c == 0) {
                        continue;
                    }
                    let (alo, ahi) = oa.ranges[col];
                    let (blo, bhi) = ob.ranges[col];
                    let db = ob.access.offset[col] as i128 - oa.access.offset[col] as i128;
                    let s_lo = blo - ahi + db;
                    let s_hi = bhi - alo + db;
                    let lhs: i128 = coeffs
                        .iter()
                        .zip(&vals)
                        .map(|(&c, &v)| c as i128 * v as i128)
                        .sum();
                    if lhs < s_lo || lhs > s_hi {
                        rows.push(Row {
                            coeffs,
                            above: lhs > s_hi,
                            s_lo,
                            s_hi,
                            lhs,
                        });
                    }
                }
                let Some(row) = rows.iter().min_by_key(|r| {
                    // Prefer rows touching fewest parameters (least
                    // pinning), then the widest margin outside the hull.
                    let nz = r.coeffs.iter().filter(|&&c| c != 0).count();
                    let margin = if r.above {
                        r.lhs - r.s_hi
                    } else {
                        r.s_lo - r.lhs
                    };
                    (nz, std::cmp::Reverse(margin))
                }) else {
                    // No row excludes this variable pair: its collision
                    // set can change with the valuation.
                    return Ok(None);
                };
                // Keep the excluding row excluded: pin every secondary
                // parameter to its audited value and bound the primary
                // one so Σ c_k·q_k stays on the audited side of S.
                let k0 = row
                    .coeffs
                    .iter()
                    .position(|&c| c != 0)
                    .expect("candidate row has a nonzero coefficient");
                for (k, &c) in row.coeffs.iter().enumerate() {
                    if k != k0 && c != 0 {
                        boxes[k].0 = boxes[k].0.max(vals[k]);
                        boxes[k].1 = boxes[k].1.min(vals[k]);
                    }
                }
                let c = row.coeffs[k0] as i128;
                let rest: i128 = row
                    .coeffs
                    .iter()
                    .zip(&vals)
                    .enumerate()
                    .filter(|&(k, _)| k != k0)
                    .map(|(_, (&cc, &v))| cc as i128 * v as i128)
                    .sum();
                if row.above {
                    // c·q_{k0} ≥ s_hi + 1 − rest
                    let rhs = row.s_hi + 1 - rest;
                    if c > 0 {
                        boxes[k0].0 = boxes[k0].0.max(clamp_i64(ceil_div_i128(rhs, c)));
                    } else {
                        boxes[k0].1 = boxes[k0].1.min(clamp_i64(floor_div_i128(rhs, c)));
                    }
                } else {
                    // c·q_{k0} ≤ s_lo − 1 − rest
                    let rhs = row.s_lo - 1 - rest;
                    if c > 0 {
                        boxes[k0].1 = boxes[k0].1.min(clamp_i64(floor_div_i128(rhs, c)));
                    } else {
                        boxes[k0].0 = boxes[k0].0.max(clamp_i64(ceil_div_i128(rhs, c)));
                    }
                }
            }
        }
        debug_assert!(
            boxes
                .iter()
                .zip(&vals)
                .all(|(&(lo, hi), &v)| lo <= v && v <= hi),
            "stability box must contain the audited valuation: {boxes:?} vs {vals:?}"
        );
        Ok(Some(boxes))
    }
}

/// Floor division on `i128` (round toward −∞ for any sign of `b`).
fn floor_div_i128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division on `i128` (round toward +∞ for any sign of `b`).
fn ceil_div_i128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && (a < 0) == (b < 0) {
        q + 1
    } else {
        q
    }
}

fn clamp_i64(v: i128) -> i64 {
    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::parallelize;
    use pdm_loopir::parse::{parse_loop, parse_loop_symbolic, parse_loop_with};

    const PAPER41: &str = "for i1 = 0..=N { for i2 = 0..=N {
        A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
    } }";

    #[test]
    fn template_plans_the_paper_nest_once_for_all_sizes() {
        let shape = parse_loop_symbolic(PAPER41, &["N"]).unwrap();
        let t = plan_template(&shape).unwrap();
        assert_eq!(t.doall_count(), 1);
        assert_eq!(t.partition_count(), 2);
        assert_eq!(t.symbolic_bounds().params(), 1);
        for n in [3i64, 9, 40] {
            let inst = t.instantiate(&[("N", n)]).unwrap();
            let conc = parallelize(&parse_loop_with(PAPER41, &[("N", n)]).unwrap()).unwrap();
            assert_eq!(inst.transform(), conc.transform());
            assert_eq!(inst.doall_count(), conc.doall_count());
            assert_eq!(inst.partition_count(), conc.partition_count());
            assert_eq!(
                inst.bounds().enumerate().unwrap(),
                conc.bounds().enumerate().unwrap(),
                "N={n}"
            );
        }
    }

    #[test]
    fn concrete_nests_degenerate_to_the_plain_pipeline() {
        let nest = parse_loop("for i = 1..=10 { A[i] = A[i - 1] + 1; }").unwrap();
        let t = plan_template(&nest).unwrap();
        assert_eq!(t.param_names(), &[] as &[String]);
        let inst = t.instantiate(&[]).unwrap();
        let conc = parallelize(&nest).unwrap();
        assert_eq!(inst.bounds(), conc.bounds());
        assert_eq!(inst.transform(), conc.transform());
    }

    #[test]
    fn instantiate_validates_the_valuation() {
        let shape = parse_loop_symbolic(PAPER41, &["N"]).unwrap();
        let t = plan_template(&shape).unwrap();
        assert!(matches!(
            t.instantiate(&[]),
            Err(CoreError::Ir(IrError::UnboundParameter { .. }))
        ));
        assert!(t.instantiate(&[("N", 5), ("M", 5)]).is_err());
    }

    #[test]
    fn empty_valuations_instantiate_to_empty_spaces() {
        let shape = parse_loop_symbolic(PAPER41, &["N"]).unwrap();
        let t = plan_template(&shape).unwrap();
        let inst = t.instantiate(&[("N", -1)]).unwrap();
        assert_eq!(inst.bounds().enumerate().unwrap().len(), 0);
        let nest = t.instantiate_nest(&[("N", -1)]).unwrap();
        assert_eq!(nest.iterations().unwrap().len(), 0);
    }

    const SHIFTED_CHAIN: &str = "for i = 0..=19 { A[i + K] = A[i] + 1; }";

    #[test]
    fn stability_box_certifies_disjoint_shift_ranges() {
        let shape = parse_loop_symbolic(SHIFTED_CHAIN, &["K"]).unwrap();
        let t = plan_template(&shape).unwrap();
        // Inside the overlap range (|K| <= 19) the write/read collision
        // set changes with K — no box.
        for k in [0i64, 1, -5, 19] {
            assert_eq!(t.stability_box(&[("K", k)]).unwrap(), None, "K={k}");
        }
        // Beyond the extent the accesses are provably disjoint for
        // every larger (resp. smaller) shift.
        assert_eq!(
            t.stability_box(&[("K", 25)]).unwrap(),
            Some(vec![(20, i64::MAX)])
        );
        assert_eq!(
            t.stability_box(&[("K", -30)]).unwrap(),
            Some(vec![(i64::MIN, -20)])
        );
    }

    #[test]
    fn stability_box_is_universal_when_parameters_cancel() {
        // Both accesses shift by the same K: every collision is
        // valuation-invariant, so the verdict is stable on all of Z.
        let src = "for i1 = 0..=9 { for i2 = 0..=9 {
            A[5*i1 + i2 + K, 7*i1 + 2*i2] = A[i1 + i2 + 4 + K, i1 + 2*i2 + 6] + 1;
        } }";
        let shape = parse_loop_symbolic(src, &["K"]).unwrap();
        let t = plan_template(&shape).unwrap();
        assert_eq!(
            t.stability_box(&[("K", 3)]).unwrap(),
            Some(vec![(i64::MIN, i64::MAX)])
        );
    }

    #[test]
    fn stability_box_refuses_parametric_bounds_and_concrete_nests() {
        // Parameter in a loop bound: the walk geometry itself moves.
        let src = "for i = 0..=N { A[i + K] = A[i] + 1; }";
        let shape = parse_loop_symbolic(src, &["N", "K"]).unwrap();
        let t = plan_template(&shape).unwrap();
        assert_eq!(t.stability_box(&[("N", 9), ("K", 100)]).unwrap(), None);
        // No parametric accesses: nothing to certify.
        let conc = parse_loop("for i = 0..=9 { A[i] = A[i] + 1; }").unwrap();
        let t = plan_template(&conc).unwrap();
        assert_eq!(t.stability_box(&[]).unwrap(), None);
    }

    #[test]
    fn stability_box_validates_the_valuation() {
        let shape = parse_loop_symbolic(SHIFTED_CHAIN, &["K"]).unwrap();
        let t = plan_template(&shape).unwrap();
        assert!(t.stability_box(&[]).is_err());
        assert!(t.stability_box(&[("Z", 1)]).is_err());
    }

    #[test]
    fn triangular_symbolic_template_matches_concrete() {
        let src = "for i = 0..=N { for j = 0..=i { A[i, j] = A[j, i] + 1; } }";
        let shape = parse_loop_symbolic(src, &["N"]).unwrap();
        let t = plan_template(&shape).unwrap();
        for n in [0i64, 1, 6] {
            let inst = t.instantiate(&[("N", n)]).unwrap();
            let conc = parallelize(&parse_loop_with(src, &[("N", n)]).unwrap()).unwrap();
            assert_eq!(
                inst.bounds().enumerate().unwrap(),
                conc.bounds().enumerate().unwrap(),
                "N={n}"
            );
        }
    }
}
