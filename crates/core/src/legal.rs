//! Legality of unimodular transformations (§3.1: Theorem 1,
//! Corollaries 1–4).
//!
//! A loop transformation is legal when it is a bijection of the iteration
//! space that preserves the execution order of every pair of dependent
//! iterations. For a unimodular `T` acting on row index vectors
//! (`y = i·T`), Theorem 1 reduces legality to a *finite* check on the PDM:
//!
//! > If `H·T` is an echelon matrix with lexicographically positive rows,
//! > then `T` is legal.
//!
//! (Every distance is `d = z·H` with `z ≻ 0` by Lemma 2; then
//! `d·T = z·(H·T) ≻ 0` by Lemma 2 again.)

use crate::Result;
use pdm_matrix::lex::{is_lex_positive, is_lex_positive_echelon, lex_cmp};
use pdm_matrix::mat::IMat;
use pdm_matrix::unimodular::Unimodular;
use pdm_matrix::vec::IVec;

/// Theorem 1: is `t` legal for the loop whose PDM is `pdm`?
///
/// `pdm` must be the HNF pseudo distance matrix (`rank × n`). An empty PDM
/// (no dependences) makes every unimodular transformation legal.
pub fn is_legal(pdm: &IMat, t: &Unimodular) -> Result<bool> {
    if pdm.rows() == 0 {
        return Ok(true);
    }
    let ht = pdm.mul(t.mat())?;
    Ok(is_lex_positive_echelon(&ht))
}

/// Direct legality check against an explicit set of distance vectors:
/// every lexicographically positive distance must stay positive after the
/// transformation. This is the *definition* of legality restricted to the
/// given sample — used to cross-validate Theorem 1 and by the brute-force
/// ISDG oracle in integration tests.
pub fn preserves_distances(distances: &[IVec], t: &Unimodular) -> Result<bool> {
    for d in distances {
        if is_lex_positive(d) {
            let td = t.apply(d)?;
            if !is_lex_positive(&td) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Corollary 2: right skewing `skewing(i, j, k)` with `i < j` is always
/// legal for an HNF PDM. Provided as a checked constructor.
pub fn legal_skewing(pdm: &IMat, n: usize, i: usize, j: usize, k: i64) -> Result<Unimodular> {
    assert!(i < j, "right skewing requires i < j (Corollary 2)");
    let t = Unimodular::skewing(n, i, j, k).map_err(crate::CoreError::Matrix)?;
    debug_assert!(is_legal(pdm, &t)?, "Corollary 2 violated — bug");
    Ok(t)
}

/// Corollary 3: shifting a zero column of the PDM is legal. Returns the
/// shift transformation after verifying column `from` is zero.
pub fn legal_shift_zero_col(pdm: &IMat, n: usize, from: usize, to: usize) -> Result<Unimodular> {
    let col_zero = pdm.rows() == 0 || (0..pdm.rows()).all(|r| pdm.get(r, from) == 0);
    if !col_zero {
        return Err(crate::CoreError::Invariant(
            "shift source column is not zero (Corollary 3 precondition)",
        ));
    }
    let t = Unimodular::shift(n, from, to).map_err(crate::CoreError::Matrix)?;
    debug_assert!(is_legal(pdm, &t)?, "Corollary 3 violated — bug");
    Ok(t)
}

/// Check the ordering property on two concrete iterations: dependent
/// iterations `i ≺ j` must map to `i·T ≺ j·T`.
pub fn preserves_pair_order(i: &IVec, j: &IVec, t: &Unimodular) -> Result<bool> {
    let ti = t.apply(i)?;
    let tj = t.apply(j)?;
    Ok(lex_cmp(i, j) == lex_cmp(&ti, &tj))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<i64>]) -> IMat {
        IMat::from_rows(rows).unwrap()
    }

    #[test]
    fn theorem1_on_paper_41_transform() {
        // PDM [[2,2]]; the pipeline's transform is skew(0,1,-1) then the
        // column shift: T = [[-1,1],[1,0]]. H·T = [(0,2)]: echelon,
        // lex-positive -> legal.
        let pdm = m(&[vec![2, 2]]);
        let t = Unimodular::new(m(&[vec![-1, 1], vec![1, 0]])).unwrap();
        assert!(is_legal(&pdm, &t).unwrap());
        // Loop reversal on the carrying direction is illegal.
        let rev = Unimodular::reversal(2, 0).unwrap();
        assert!(!is_legal(&pdm, &rev).unwrap());
    }

    #[test]
    fn empty_pdm_everything_legal() {
        let pdm = IMat::zeros(0, 2);
        let rev = Unimodular::reversal(2, 0).unwrap();
        assert!(is_legal(&pdm, &rev).unwrap());
    }

    #[test]
    fn interchange_legality_depends_on_pdm() {
        // PDM [[1,0],[0,1]] (both directions carried): interchange maps it
        // to itself-with-swapped-columns = [[0,1],[1,0]] -> not echelon ->
        // Theorem 1 does not certify it (indeed it breaks (0,1)->(1,0)?
        // no: (0,1)->(1,0) stays positive; but (1,0)->(0,1) also positive;
        // interchange IS legal here by the definition, Theorem 1 is only
        // sufficient).
        let pdm = m(&[vec![1, 0], vec![0, 1]]);
        let ic = Unimodular::interchange(2, 0, 1).unwrap();
        assert!(!is_legal(&pdm, &ic).unwrap());
        // The definitional check on sample distances says legal:
        let ds = vec![IVec::from_slice(&[1, 0]), IVec::from_slice(&[0, 1])];
        assert!(preserves_distances(&ds, &ic).unwrap());
        // ... which shows Theorem 1 is sufficient, not necessary.
    }

    #[test]
    fn skewing_always_legal_corollary2() {
        // For several HNF PDMs and skewing parameters, Corollary 2 holds.
        let pdms = [
            m(&[vec![2, 2]]),
            m(&[vec![1, 0], vec![0, 1]]),
            m(&[vec![2, 1], vec![0, 2]]),
            m(&[vec![1, 5, 0], vec![0, 6, 2], vec![0, 0, 3]]),
        ];
        for pdm in &pdms {
            let n = pdm.cols();
            for i in 0..n {
                for j in i + 1..n {
                    for k in -3..=3 {
                        let t = legal_skewing(pdm, n, i, j, k).unwrap();
                        assert!(is_legal(pdm, &t).unwrap(), "skew({i},{j},{k}) on\n{pdm}");
                    }
                }
            }
        }
    }

    #[test]
    fn shift_zero_col_checked() {
        let pdm = m(&[vec![0, 2, 1], vec![0, 0, 3]]);
        // Column 0 is zero: shifting it anywhere is legal.
        let t = legal_shift_zero_col(&pdm, 3, 0, 2).unwrap();
        assert!(is_legal(&pdm, &t).unwrap());
        // Column 1 is not zero: constructor refuses.
        assert!(legal_shift_zero_col(&pdm, 3, 1, 0).is_err());
    }

    #[test]
    fn composition_stays_legal_corollary1() {
        let pdm = m(&[vec![2, 2]]);
        let t1 = legal_skewing(&pdm, 2, 0, 1, -1).unwrap(); // H·T1 = [(2,0)]
        let h1 = pdm.mul(t1.mat()).unwrap();
        let t2 = legal_shift_zero_col(&h1, 2, 1, 0).unwrap();
        let t = t1.compose(&t2).unwrap();
        assert!(is_legal(&pdm, &t).unwrap());
        let ht = pdm.mul(t.mat()).unwrap();
        assert_eq!(ht, m(&[vec![0, 2]]));
    }

    #[test]
    fn pair_order_preservation() {
        let t = Unimodular::new(m(&[vec![-1, 1], vec![1, 0]])).unwrap();
        let i = IVec::from_slice(&[1, 2]);
        let j = IVec::from_slice(&[3, 4]); // j - i = (2,2): carried distance
        assert!(preserves_pair_order(&i, &j, &t).unwrap());
    }
}
