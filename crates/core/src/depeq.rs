//! Dependence equations for a pair of array references (eq. 2.4–2.6).
//!
//! Two references `X[i·A₁ + b₁]` and `X[j·A₂ + b₂]` touch the same element
//! exactly when `i·A₁ + b₁ = j·A₂ + b₂`, i.e. when the concatenated vector
//! `x = (i, j) ∈ Z²ⁿ` solves the linear diophantine system
//!
//! ```text
//! x · M = c,    M = [ A₁ ; −A₂ ]  (2n × m),    c = b₂ − b₁.
//! ```

use crate::Result;
use pdm_loopir::stmt::ArrayRef;
use pdm_matrix::mat::IMat;
use pdm_matrix::vec::IVec;

/// The diophantine system of one reference pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEquation {
    /// Stacked coefficient matrix `M = [A₁; −A₂]`, `2n × m`.
    pub m: IMat,
    /// Right-hand side `c = b₂ − b₁`, length `m`.
    pub c: IVec,
    /// Loop depth `n`.
    pub depth: usize,
}

/// Build the dependence equation system for references `a` (iteration `i`)
/// and `b` (iteration `j`) of the same array.
pub fn dependence_equation(a: &ArrayRef, b: &ArrayRef) -> Result<DepEquation> {
    debug_assert_eq!(a.array, b.array, "pair must reference one array");
    let n = a.access.depth();
    let neg_b = b.access.matrix.scale(-1)?;
    let m = a.access.matrix.vstack(&neg_b)?;
    let c = b.access.offset.sub(&a.access.offset)?;
    Ok(DepEquation { m, c, depth: n })
}

impl DepEquation {
    /// Evaluate: do iterations `i` and `j` access the same element?
    /// (Direct check used by tests and the brute-force ISDG oracle.)
    pub fn holds(&self, i: &IVec, j: &IVec) -> Result<bool> {
        let mut x = i.0.clone();
        x.extend_from_slice(j);
        Ok(self.m.vec_mul(&IVec(x))? == self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::parse_loop;

    #[test]
    fn equation_shape_and_content() {
        // Reconstructed §4.1 loop (see DESIGN.md): write A[5i1+i2, 7i1+2i2],
        // read A[i1+i2+4, i1+2i2+6].
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let pairs = nest.dependence_pairs();
        // Find the write/read pair.
        let wr = pairs
            .iter()
            .find(|p| p.ref_a != p.ref_b)
            .expect("flow pair exists");
        let eq = dependence_equation(wr.ref_a, wr.ref_b).unwrap();
        assert_eq!(eq.m.rows(), 4);
        assert_eq!(eq.m.cols(), 2);
        // M = [A1; -A2]: A1 rows (5,7),(1,2); -A2 rows (-1,-1),(-1,-2).
        assert_eq!(eq.m.row(0), &[5, 7]);
        assert_eq!(eq.m.row(1), &[1, 2]);
        assert_eq!(eq.m.row(2), &[-1, -1]);
        assert_eq!(eq.m.row(3), &[-1, -2]);
        assert_eq!(eq.c.as_slice(), &[4, 6]);
    }

    #[test]
    fn holds_matches_subscript_evaluation() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let pairs = nest.dependence_pairs();
        let wr = pairs.iter().find(|p| p.ref_a != p.ref_b).unwrap();
        let eq = dependence_equation(wr.ref_a, wr.ref_b).unwrap();
        for i1 in 0..6i64 {
            for i2 in 0..6i64 {
                for j1 in -6..6i64 {
                    for j2 in -6..6i64 {
                        let i = IVec::from_slice(&[i1, i2]);
                        let j = IVec::from_slice(&[j1, j2]);
                        let direct =
                            wr.ref_a.access.eval(&i).unwrap() == wr.ref_b.access.eval(&j).unwrap();
                        assert_eq!(eq.holds(&i, &j).unwrap(), direct);
                    }
                }
            }
        }
    }

    #[test]
    fn self_pair_equation() {
        let nest = parse_loop("for i = 0..=9 { A[2*i] = 1; }").unwrap();
        let pairs = nest.dependence_pairs();
        let eq = dependence_equation(pairs[0].ref_a, pairs[0].ref_b).unwrap();
        // Output self-dependence: M = [2; -2], c = 0.
        assert_eq!(eq.m.rows(), 2);
        assert_eq!(eq.c.as_slice(), &[0]);
        // Only i == j solves 2i = 2j.
        assert!(eq
            .holds(&IVec::from_slice(&[3]), &IVec::from_slice(&[3]))
            .unwrap());
        assert!(!eq
            .holds(&IVec::from_slice(&[3]), &IVec::from_slice(&[4]))
            .unwrap());
    }
}
