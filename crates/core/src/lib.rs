//! # pdm-core — the pseudo distance matrix loop parallelizer
//!
//! Implementation of *Yu & D'Hollander, "Partitioning Loops with Variable
//! Dependence Distances", ICPP 2000*: analysis and transformation of
//! perfectly nested loops whose affine array subscripts induce **variable**
//! (non-uniform) dependence distances.
//!
//! Pipeline (paper section in parentheses):
//!
//! 1. [`depeq`] — build the linear diophantine dependence equations for
//!    every array reference pair (§2.2, eq. 2.4–2.6).
//! 2. [`pairlat`] — solve them and characterise all distance vectors of a
//!    pair as a lattice: homogeneous generators plus, when it falls outside
//!    their span, the particular solution (§2.3, eq. 2.13–2.17).
//! 3. [`pdm`] — merge the per-pair generators over the whole loop and
//!    reduce to Hermite normal form: the **pseudo distance matrix** (eq.
//!    2.18–2.21). Zero columns are parallel loops (Lemma 1).
//! 4. [`legal`] — Theorem 1: a unimodular `T` is legal iff `H·T` is an
//!    echelon matrix with lexicographically positive rows; plus the legal
//!    elementary transformations of Corollaries 2–4.
//! 5. [`algorithm1`] — the paper's Algorithm 1: for a non-full-rank PDM,
//!    a legal unimodular `T` zeroing `n − rank` columns → outer `doall`s.
//! 6. [`partition`] — Theorem 2: a full-rank (sub-)PDM splits the
//!    iteration space into `det(H)` independent partitions.
//! 7. [`plan`] — the end-to-end [`plan::parallelize`] driver combining all
//!    of the above and deriving transformed loop bounds by Fourier–Motzkin.
//! 8. [`template`] — the parametric flavour of 7: plan a **symbolic**
//!    nest shape once ([`template::plan_template`]) and instantiate a
//!    [`plan::ParallelPlan`] per problem size with no re-analysis and no
//!    Fourier–Motzkin.
//! 9. [`program`] — the **imperfect-nest** flavour of 7: normalize an
//!    [`pdm_loopir::imperfect::ImperfectNest`] into perfect kernels,
//!    plan each, and sequence them by their dependence DAG
//!    ([`program::parallelize_program`] → [`program::ProgramPlan`]).
//! 10. [`codegen`] — render plans (and program plans) as paper-style
//!     `doall` pseudo-code.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithm1;
pub mod codegen;
pub mod corollary5;
pub mod depeq;
pub mod deptest;
pub mod legal;
pub mod pairlat;
pub mod partition;
pub mod pdm;
pub mod pipeline;
pub mod plan;
pub mod program;
pub mod template;

pub use pdm::{analyze, PdmAnalysis};
pub use plan::{parallelize, ParallelPlan};
pub use program::{parallelize_program, KernelPlan, ProgramPlan};
pub use template::{plan_template, PlanTemplate};

/// Errors of the analysis/transformation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Exact arithmetic failure.
    Matrix(pdm_matrix::MatrixError),
    /// Loop IR failure.
    Ir(pdm_loopir::IrError),
    /// An internal invariant of a transformation algorithm was violated —
    /// always a bug, surfaced loudly instead of emitting an illegal
    /// schedule.
    Invariant(&'static str),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Matrix(e) => write!(f, "matrix error: {e}"),
            CoreError::Ir(e) => write!(f, "loop IR error: {e}"),
            CoreError::Invariant(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<pdm_matrix::MatrixError> for CoreError {
    fn from(e: pdm_matrix::MatrixError) -> Self {
        CoreError::Matrix(e)
    }
}

impl From<pdm_loopir::IrError> for CoreError {
    fn from(e: pdm_loopir::IrError) -> Self {
        CoreError::Ir(e)
    }
}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
