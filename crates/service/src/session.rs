//! [`Session`] — the unified front end to the whole pipeline.
//!
//! A session wraps parse → analyze → template → cache → execute behind
//! one object with one error type ([`PdmError`]). It is `Sync` and
//! meant to be shared: every method takes `&self`, template planning is
//! deduplicated through the session's [`ShardedPlanCache`], and the
//! execution schedule plus thread count are fixed at construction (from
//! [`RuntimeConfig`] unless overridden) instead of re-read from the
//! environment per call.
//!
//! ```
//! use pdm_service::Session;
//!
//! let session = Session::builder().cache_capacity(4, 32).build();
//! let shape = session
//!     .parse_symbolic("for i = 1..=N { A[i] = A[i - 1] + 1; }", &["N"])
//!     .unwrap();
//! let template = session.plan(&shape).unwrap(); // cached for next time
//! let outcome = session.run(&shape, &[("N", 100)], 1).unwrap();
//! assert_eq!(outcome.iterations, 100);
//! assert_eq!(template.depth(), 1);
//! ```

use crate::error::PdmError;
use crate::faults::{self, Faults};
use crate::metrics::ServiceMetrics;
use pdm_core::pdm::PdmAnalysis;
use pdm_core::plan::ParallelPlan;
use pdm_core::program::ProgramPlan;
use pdm_core::template::{plan_template, PlanTemplate};
use pdm_loopir::imperfect::ImperfectNest;
use pdm_loopir::nest::LoopNest;
use pdm_runtime::inspector::{self, Verdict};
use pdm_runtime::sharded::{CacheStats, ShardedPlanCache, VerdictCache, VerdictSource};
use pdm_runtime::template::{instantiate_compiled, CompiledInstance};
use pdm_runtime::{RuntimeConfig, RuntimeError, Schedule};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// A cooperative per-request budget: stages check it between (never
/// inside) their bulk work, so an expired deadline abandons the request
/// at the next stage boundary rather than preempting anything.
#[derive(Debug, Clone, Copy)]
pub struct Deadline(Instant);

impl Deadline {
    /// A budget of `ms` milliseconds starting now.
    pub fn in_ms(ms: u64) -> Deadline {
        Deadline(Instant::now() + std::time::Duration::from_millis(ms))
    }

    /// Has the budget expired?
    pub fn expired(&self) -> bool {
        Instant::now() > self.0
    }

    /// Error out if the budget expired (the stage-boundary check).
    pub fn check(deadline: Option<Deadline>) -> Result<(), PdmError> {
        match deadline {
            Some(d) if d.expired() => Err(PdmError::DeadlineExceeded),
            _ => Ok(()),
        }
    }
}

/// Default shard count for the session's template cache.
pub const DEFAULT_SHARDS: usize = 8;
/// Default template capacity per shard.
pub const DEFAULT_CAPACITY_PER_SHARD: usize = 64;

/// Builder for [`Session`]. All knobs optional:
///
/// ```
/// use pdm_service::Session;
/// let session = Session::builder()
///     .cache_capacity(4, 16) // 4 shards × 16 templates
///     .threads(2)            // execution pool width
///     .build();
/// assert_eq!(session.cache().shard_count(), 4);
/// ```
#[derive(Debug)]
pub struct SessionBuilder {
    shards: usize,
    capacity_per_shard: usize,
    verdict_capacity: Option<usize>,
    threads: Option<usize>,
    config: Option<RuntimeConfig>,
    faults: Option<Faults>,
    sequential_fallback: bool,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            shards: DEFAULT_SHARDS,
            capacity_per_shard: DEFAULT_CAPACITY_PER_SHARD,
            verdict_capacity: None,
            threads: None,
            config: None,
            faults: None,
            sequential_fallback: true,
        }
    }
}

impl SessionBuilder {
    /// Shape of the template cache: `shards` independent shards of
    /// `capacity_per_shard` templates each.
    pub fn cache_capacity(mut self, shards: usize, capacity_per_shard: usize) -> Self {
        self.shards = shards;
        self.capacity_per_shard = capacity_per_shard;
        self
    }

    /// Per-shard point-entry bound of the inspector's
    /// [`VerdictCache`] (default: the session config's
    /// `verdict_capacity`, i.e. `PDM_VERDICT_CAPACITY` or 256).
    /// Least-recently-used `(shape, valuation)` verdicts are evicted
    /// beyond it; certified intervals are capped separately.
    pub fn verdict_capacity(mut self, capacity_per_shard: usize) -> Self {
        self.verdict_capacity = Some(capacity_per_shard);
        self
    }

    /// Worker threads for parallel execution (default: the machine
    /// width, as [`rayon::current_num_threads`] reports it).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Runtime configuration override (default:
    /// [`RuntimeConfig::global`], the environment read once per
    /// process).
    pub fn config(mut self, config: RuntimeConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Fault-injection probes for this session (default: armed from
    /// `PDM_FAULTS` via [`Faults::from_env`], i.e. disabled unless the
    /// environment says otherwise). Tests pass probes here directly so
    /// parallel test binaries never race on global state.
    pub fn faults(mut self, faults: Faults) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Whether a failed parallel execution degrades to the sequential
    /// *checked* path before the error is surfaced (default: on).
    pub fn sequential_fallback(mut self, on: bool) -> Self {
        self.sequential_fallback = on;
        self
    }

    /// Build the session.
    pub fn build(self) -> Session {
        let config = self
            .config
            .unwrap_or_else(|| RuntimeConfig::global().clone());
        let schedule = config.schedule();
        Session {
            cache: Arc::new(ShardedPlanCache::new(self.shards, self.capacity_per_shard)),
            verdicts: Arc::new(VerdictCache::with_capacity(
                self.shards,
                self.verdict_capacity.unwrap_or(config.verdict_capacity),
            )),
            pool: self.threads.map(|n| {
                rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    .expect("the vendored pool builder is infallible")
            }),
            schedule,
            config,
            metrics: Arc::new(ServiceMetrics::new()),
            faults: Arc::new(self.faults.unwrap_or_else(Faults::from_env)),
            sequential_fallback: self.sequential_fallback,
        }
    }
}

/// What [`Session::run`] returns: the executed instance (memory holds
/// the results) plus the iteration count.
pub struct RunOutcome {
    /// The instance that ran; `instance.memory` holds the output.
    pub instance: CompiledInstance,
    /// Iterations executed.
    pub iterations: u64,
    /// Wrapping sum over every array cell after the run — a cheap
    /// order-independent digest for wire responses and differential
    /// checks.
    pub checksum: i64,
    /// The inspector's verdict when the template was planned
    /// speculatively (parametric subscripts) — `None` for templates
    /// whose plan needs no runtime audit.
    pub verdict: Option<Verdict>,
    /// Did a certified valuation *interval* answer the inspector gate
    /// (no audit ran or was ever needed for this valuation)? Always
    /// `false` for uninspected templates.
    pub interval_hit: bool,
}

/// The unified, shareable front end: parse → analyze → template →
/// cache → execute, one error type, internally synchronized.
///
/// Construction fixes the execution environment: the range-splitting
/// [`Schedule`] comes from the session's [`RuntimeConfig`] (by default
/// the process-wide environment read), and parallel runs use the
/// session's thread count. Templates are cached in a sharded
/// single-flight [`ShardedPlanCache`] shared by every clone of the
/// session's `Arc`s — concurrent requests for one shape plan once.
pub struct Session {
    cache: Arc<ShardedPlanCache>,
    verdicts: Arc<VerdictCache>,
    pool: Option<rayon::ThreadPool>,
    schedule: Schedule,
    config: RuntimeConfig,
    metrics: Arc<ServiceMetrics>,
    faults: Arc<Faults>,
    sequential_fallback: bool,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A session with default cache shape, machine thread count, and
    /// the process-wide [`RuntimeConfig`].
    pub fn new() -> Session {
        Session::builder().build()
    }

    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    // --- parsing ----------------------------------------------------

    /// Parse a concrete loop nest from DSL source.
    pub fn parse(&self, source: &str) -> Result<LoopNest, PdmError> {
        Ok(pdm_loopir::parse::parse_loop(source)?)
    }

    /// Parse with named values substituted (`parse_loop_with`).
    pub fn parse_with(&self, source: &str, binds: &[(&str, i64)]) -> Result<LoopNest, PdmError> {
        Ok(pdm_loopir::parse::parse_loop_with(source, binds)?)
    }

    /// Parse keeping `params` symbolic — the shape templates plan over.
    pub fn parse_symbolic(&self, source: &str, params: &[&str]) -> Result<LoopNest, PdmError> {
        Ok(pdm_loopir::parse::parse_loop_symbolic(source, params)?)
    }

    /// Parse an imperfect nest (statements between loop levels).
    pub fn parse_imperfect(&self, source: &str) -> Result<ImperfectNest, PdmError> {
        Ok(pdm_loopir::parse::parse_imperfect(source)?)
    }

    // --- analysis & planning ----------------------------------------

    /// The pseudo-distance-matrix analysis of a nest.
    pub fn analyze(&self, nest: &LoopNest) -> Result<PdmAnalysis, PdmError> {
        Ok(pdm_core::analyze(nest)?)
    }

    /// The plan template for `nest`'s shape — served from the session
    /// cache, planned at most once per shape across all threads
    /// (single-flight). Records acquisition latency in the session
    /// metrics.
    pub fn plan(&self, nest: &LoopNest) -> Result<Arc<PlanTemplate>, PdmError> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let t0 = Instant::now();
        // A panicking planning run (a planner bug, or the plan.leader
        // fault probe) must reach this session's caller as a typed
        // error, same as the flight's followers see — never an unwind
        // through the service. The cache is internally synchronized
        // with poison recovery, so crossing it with catch_unwind is
        // sound.
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.cache.get_or_plan_with(nest, || {
                self.faults.panic_if(faults::PLAN_LEADER);
                plan_template(nest)
                    .map(Arc::new)
                    .map_err(RuntimeError::from)
            })
        }))
        .unwrap_or_else(|payload| {
            Err(RuntimeError::PlanningFailed(format!(
                "the planning run for this shape panicked: {}",
                rayon::panic_message(&*payload)
            )))
        });
        self.metrics.template_acquire.record(t0.elapsed());
        Ok(result?)
    }

    /// A cached template by structural hash alone (the wire protocol's
    /// replay path). Fails with [`PdmError::UnknownShape`] when nothing
    /// with that hash is cached — resubmit the source.
    pub fn plan_by_hash(&self, hash: u64) -> Result<Arc<PlanTemplate>, PdmError> {
        self.cache
            .get_by_hash(hash)
            .ok_or(PdmError::UnknownShape(hash))
    }

    /// A concrete [`ParallelPlan`] for a concrete nest — template
    /// planning through the cache, then parameter-free instantiation
    /// (pure bound-row evaluation). Equivalent to
    /// `pdm_core::parallelize(nest)` with caching.
    pub fn parallelize(&self, nest: &LoopNest) -> Result<ParallelPlan, PdmError> {
        Ok(self.plan(nest)?.instantiate(&[])?)
    }

    /// Plan an imperfect nest: normalize to perfect kernels and stage
    /// them by the dependence DAG. (Program plans are not cached —
    /// imperfect sources are not yet hashed structurally.)
    pub fn plan_program(&self, nest: &ImperfectNest) -> Result<ProgramPlan, PdmError> {
        Ok(pdm_core::parallelize_program(nest)?)
    }

    // --- instantiation & execution ----------------------------------

    /// Lower `shape` at `params` to a ready-to-run
    /// [`CompiledInstance`], planning through the cache.
    pub fn instantiate(
        &self,
        shape: &LoopNest,
        params: &[(&str, i64)],
    ) -> Result<CompiledInstance, PdmError> {
        let template = self.plan(shape)?;
        Ok(instantiate_compiled(&template, params)?)
    }

    /// [`Session::instantiate`] from an already-acquired template (the
    /// by-hash wire path).
    pub fn instantiate_template(
        &self,
        template: &PlanTemplate,
        params: &[(&str, i64)],
    ) -> Result<CompiledInstance, PdmError> {
        Ok(instantiate_compiled(template, params)?)
    }

    /// Instantiate and execute in parallel on the session's pool and
    /// schedule. Memory is seeded deterministically with `seed` before
    /// the run, so equal requests produce equal checksums.
    pub fn run(
        &self,
        shape: &LoopNest,
        params: &[(&str, i64)],
        seed: u64,
    ) -> Result<RunOutcome, PdmError> {
        let template = self.plan(shape)?;
        self.run_template(&template, params, seed)
    }

    /// [`Session::run`] from an already-acquired template (the by-hash
    /// wire path).
    pub fn run_template(
        &self,
        template: &PlanTemplate,
        params: &[(&str, i64)],
        seed: u64,
    ) -> Result<RunOutcome, PdmError> {
        self.run_template_within(template, params, seed, None)
    }

    /// [`Session::run_template`] under a cooperative [`Deadline`]: the
    /// budget is checked between pipeline stages (after instantiate,
    /// after the inspector audit, after execute) — an expired budget
    /// abandons the request with [`PdmError::DeadlineExceeded`] at the
    /// next boundary. A failed parallel execution degrades to the
    /// sequential *checked* path (race-audited, one thread) when the
    /// session allows it, counted in `fallback_runs` /
    /// `fallback_successes`.
    ///
    /// Templates planned **speculatively** (parametric subscripts —
    /// [`PlanTemplate::requires_inspection`]) pass through the
    /// inspector first: the verdict for this `(shape, valuation)` pair
    /// — cached in the session's [`VerdictCache`] — picks the executor.
    /// Certified verdicts run the compiled parallel engine unchanged,
    /// refined verdicts run the staged group schedule, and rejected
    /// verdicts run the sequential reference order. The outcome's
    /// `verdict` field reports which path ran.
    pub fn run_template_within(
        &self,
        template: &PlanTemplate,
        params: &[(&str, i64)],
        seed: u64,
        deadline: Option<Deadline>,
    ) -> Result<RunOutcome, PdmError> {
        Deadline::check(deadline)?;
        let mut instance = self.instantiate_template(template, params)?;
        Deadline::check(deadline)?;
        let (verdict, interval_hit) = if template.requires_inspection() {
            let (v, interval_hit) = self.audit_instance(template, params, &instance)?;
            (Some(v), interval_hit)
        } else {
            (None, false)
        };
        Deadline::check(deadline)?;
        instance.memory.init_deterministic(seed);
        let iterations = match &verdict {
            // Refined: the plan's groups are safe only in dependence
            // stages — run the compiled engine's range tasks stage by
            // stage (a barrier between stages, the groups of one stage
            // concurrent).
            Some(Verdict::Refined { stages }) => {
                let run = || {
                    inspector::run_refined_compiled(
                        &instance.compiled,
                        &instance.memory,
                        stages,
                        self.schedule,
                    )
                };
                match &self.pool {
                    Some(pool) => pool.install(run),
                    None => run(),
                }?
            }
            // Rejected: this valuation's dependences defeat the hull
            // plan entirely — sequential reference order.
            Some(Verdict::Rejected { .. }) => {
                pdm_runtime::run_sequential(&instance.nest, &instance.memory)?
            }
            // Uninspected or certified: the compiled parallel engine.
            None | Some(Verdict::Certified) => match self.execute(&instance) {
                Ok(n) => n,
                Err(primary) => {
                    if !self.sequential_fallback {
                        return Err(primary);
                    }
                    // Graceful degradation: re-seed and re-run on the
                    // audited sequential path. If even that fails, the
                    // primary error is the truth worth surfacing.
                    self.metrics.fallback_runs.fetch_add(1, Ordering::Relaxed);
                    Deadline::check(deadline)?;
                    instance.memory.init_deterministic(seed);
                    // One thread (sequential) + the race-auditing checked
                    // executor: the slowest, most-validated path we have.
                    let sequential = rayon::ThreadPoolBuilder::new()
                        .num_threads(1)
                        .build()
                        .expect("the vendored pool builder is infallible");
                    match sequential.install(|| {
                        pdm_runtime::checked::run_parallel_checked(
                            &instance.nest,
                            &instance.plan,
                            &instance.memory,
                        )
                    }) {
                        Ok(n) => {
                            self.metrics
                                .fallback_successes
                                .fetch_add(1, Ordering::Relaxed);
                            n
                        }
                        Err(_) => return Err(primary),
                    }
                }
            },
        };
        Deadline::check(deadline)?;
        let checksum = checksum(&instance.memory);
        Ok(RunOutcome {
            instance,
            iterations,
            checksum,
            verdict,
            interval_hit,
        })
    }

    /// The inspector gate for speculatively planned templates: fetch
    /// (or compute and cache) the verdict for this `(shape, valuation)`
    /// pair, reporting whether a certified *interval* answered it.
    /// Fresh audits record their latency in `inspector_audit` and then
    /// try [`PlanTemplate::stability_box`]: a certifiable valuation
    /// interval is cached ahead of point entries, so every in-interval
    /// valuation that follows skips the audit entirely (counted in
    /// `inspector_interval_hits`). Every inspected run bumps the
    /// verdict-kind counter, so the `pdm_inspector_*_total` metrics
    /// count *served runs*, not distinct valuations.
    fn audit_instance(
        &self,
        template: &PlanTemplate,
        params: &[(&str, i64)],
        instance: &CompiledInstance,
    ) -> Result<(Verdict, bool), PdmError> {
        // The cache key orders values by the template's parameter list,
        // so `[("M",1),("N",2)]` and `[("N",2),("M",1)]` share an entry.
        let valuation: Vec<i64> = template
            .param_names()
            .iter()
            .map(|name| {
                params
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|&(_, v)| v)
                    .unwrap_or(0) // unreachable: instantiation validated presence
            })
            .collect();
        let hash = template.nest().structural_hash();
        let (verdict, interval_hit) = match self.verdicts.get_with_source(hash, &valuation) {
            Some((v, source)) => {
                let interval = source == VerdictSource::Interval;
                if interval {
                    self.metrics
                        .inspector_interval_hits
                        .fetch_add(1, Ordering::Relaxed);
                }
                (v, interval)
            }
            None => {
                let t0 = Instant::now();
                let result = inspector::audit(&instance.nest, &instance.plan);
                self.metrics.inspector_audit.record(t0.elapsed());
                let v = result?;
                // Certify a whole valuation interval when the geometry
                // allows it; a failed derivation (or a genuinely
                // point-local verdict) degrades to a point entry.
                match template.stability_box(params) {
                    Ok(Some(bounds)) => self.verdicts.insert_interval(hash, &bounds, v.clone()),
                    _ => self.verdicts.insert(hash, valuation, v.clone()),
                }
                (v, false)
            }
        };
        let counter = match &verdict {
            Verdict::Certified => &self.metrics.inspector_certified,
            Verdict::Refined { .. } => &self.metrics.inspector_refined,
            Verdict::Rejected { .. } => &self.metrics.inspector_rejected,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Ok((verdict, interval_hit))
    }

    /// Execute an already-prepared instance on the session's pool with
    /// the session's schedule (memory as-is — initialize it first).
    pub fn execute(&self, instance: &CompiledInstance) -> Result<u64, PdmError> {
        let run = || {
            instance
                .compiled
                .run_parallel_scheduled(&instance.memory, self.schedule)
        };
        let iterations = match &self.pool {
            Some(pool) => pool.install(run),
            None => run(),
        }?;
        Ok(iterations)
    }

    // --- introspection ----------------------------------------------

    /// The session's template cache (shared; hand it to a server).
    pub fn cache(&self) -> &Arc<ShardedPlanCache> {
        &self.cache
    }

    /// Aggregated cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The session's inspector verdict cache (one audit per
    /// `(shape, valuation)` pair across all threads).
    pub fn verdicts(&self) -> &Arc<VerdictCache> {
        &self.verdicts
    }

    /// The session's metrics sink (shared with the server layer).
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// The session's fault-injection probes (disabled unless armed via
    /// builder or `PDM_FAULTS`).
    pub fn faults(&self) -> &Arc<Faults> {
        &self.faults
    }

    /// The runtime configuration the session was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The range-splitting schedule the session executes with.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// The execution thread count (`None` = machine default).
    pub fn threads(&self) -> Option<usize> {
        self.pool.as_ref().map(|p| p.current_num_threads())
    }
}

/// Wrapping sum over every array cell — the run checksum.
fn checksum(memory: &pdm_runtime::Memory) -> i64 {
    memory
        .snapshot()
        .iter()
        .flat_map(|arr| arr.iter())
        .fold(0i64, |acc, &v| acc.wrapping_add(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SYM: &str = "for i1 = 0..N { for i2 = 0..N {
        A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
    } }";

    #[test]
    fn session_pipeline_matches_free_functions() {
        let session = Session::builder().cache_capacity(2, 8).threads(2).build();
        let nest = session
            .parse("for i = 0..=20 { A[3*i + 9] = A[3*i] + 1; }")
            .unwrap();
        let analysis = session.analyze(&nest).unwrap();
        assert_eq!(analysis.depth(), 1);

        let via_session = session.parallelize(&nest).unwrap();
        let direct = pdm_core::parallelize(&nest).unwrap();
        assert_eq!(via_session.doall_count(), direct.doall_count());
        assert_eq!(via_session.partition_count(), direct.partition_count());
    }

    #[test]
    fn run_is_deterministic_and_checksummed() {
        let session = Session::builder().threads(2).build();
        let shape = session.parse_symbolic(SYM, &["N"]).unwrap();
        let a = session.run(&shape, &[("N", 16)], 7).unwrap();
        let b = session.run(&shape, &[("N", 16)], 7).unwrap();
        assert_eq!(a.iterations, 256);
        assert_eq!(a.checksum, b.checksum);
        // One template served both runs.
        let s = session.cache_stats();
        assert_eq!(s.planned, 1);
        assert_eq!(s.hits, 1);
        assert!(session.metrics().template_acquire.count() >= 2);
    }

    #[test]
    fn plan_by_hash_replays_and_rejects_unknown() {
        let session = Session::new();
        let shape = session.parse_symbolic(SYM, &["N"]).unwrap();
        let hash = shape.structural_hash();
        assert!(matches!(
            session.plan_by_hash(hash),
            Err(PdmError::UnknownShape(h)) if h == hash
        ));
        let planned = session.plan(&shape).unwrap();
        let by_hash = session.plan_by_hash(hash).unwrap();
        assert!(Arc::ptr_eq(&planned, &by_hash));
        let inst = session.instantiate_template(&by_hash, &[("N", 8)]).unwrap();
        assert_eq!(session.execute(&inst).unwrap(), 64);
    }

    #[test]
    fn expired_deadline_abandons_the_run() {
        let session = Session::builder().threads(1).build();
        let shape = session.parse_symbolic(SYM, &["N"]).unwrap();
        let template = session.plan(&shape).unwrap();
        // A zero-millisecond budget that has certainly expired by the
        // first stage boundary.
        let d = Deadline::in_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let err = session
            .run_template_within(&template, &[("N", 8)], 1, Some(d))
            .map(|o| o.iterations)
            .unwrap_err();
        assert_eq!(err, PdmError::DeadlineExceeded);
        // A generous budget runs to completion.
        let ok = session
            .run_template_within(&template, &[("N", 8)], 1, Some(Deadline::in_ms(60_000)))
            .unwrap();
        assert_eq!(ok.iterations, 64);
    }

    #[test]
    fn injected_leader_panic_is_typed_and_retryable() {
        let session = Session::builder()
            .threads(1)
            .faults(Faults::parse("plan.leader:1:1", 0).unwrap())
            .build();
        let shape = session.parse_symbolic(SYM, &["N"]).unwrap();
        // First plan: the leader panics (limit 1); the caller must see
        // a typed planning failure, not a poisoned-lock cascade.
        let err = session.plan(&shape).unwrap_err();
        assert_eq!(err.kind(), "planning_failed");
        // Retry: the probe is exhausted, planning succeeds, and the
        // cache bucket invariant still holds.
        let template = session.plan(&shape).unwrap();
        assert_eq!(template.depth(), 2);
        let s = session.cache_stats();
        assert_eq!(s.hits + s.planned + s.waited, s.requests());
    }

    /// The 1D shifted chain: the hull (`K` dropped) carries no
    /// dependence, so the template plans fully parallel and every run
    /// must pass through the inspector.
    const SHIFTED: &str = "for i = 0..=19 { A[i + K] = A[i] + 1; }";

    #[test]
    fn inspected_runs_dispatch_on_the_verdict() {
        let session = Session::builder().threads(2).build();
        let shape = session.parse_symbolic(SHIFTED, &["K"]).unwrap();
        let template = session.plan(&shape).unwrap();
        assert!(template.requires_inspection());

        // K = 0: the accesses coincide, the hull plan is exact —
        // certified, parallel, 20 iterations.
        let ok = session.run(&shape, &[("K", 0)], 5).unwrap();
        assert_eq!(ok.iterations, 20);
        assert_eq!(ok.verdict, Some(Verdict::Certified));

        // K = 1: a real loop-carried chain the hull missed — the
        // verdict must demote the run, and the output must match the
        // sequential reference for the same concrete nest and seed.
        let demoted = session.run(&shape, &[("K", 1)], 5).unwrap();
        assert!(matches!(
            demoted.verdict,
            Some(Verdict::Refined { .. }) | Some(Verdict::Rejected { .. })
        ));
        let concrete = session
            .parse("for i = 0..=19 { A[i + 1] = A[i] + 1; }")
            .unwrap();
        let mut reference = pdm_runtime::Memory::for_nest(&concrete).unwrap();
        reference.init_deterministic(5);
        pdm_runtime::run_sequential(&concrete, &reference).unwrap();
        let ref_sum = reference
            .snapshot()
            .iter()
            .flat_map(|a| a.iter())
            .fold(0i64, |acc, &v| acc.wrapping_add(v));
        assert_eq!(demoted.iterations, 20);
        assert_eq!(demoted.checksum, ref_sum);

        // Parameter-free templates skip the inspector entirely.
        let plain = session.run(&concrete, &[], 5).unwrap();
        assert_eq!(plain.verdict, None);
    }

    #[test]
    fn verdicts_are_cached_per_valuation_and_counted() {
        let session = Session::builder().threads(1).build();
        let shape = session.parse_symbolic(SHIFTED, &["K"]).unwrap();
        for _ in 0..3 {
            session.run(&shape, &[("K", 0)], 1).unwrap();
        }
        session.run(&shape, &[("K", 1)], 1).unwrap();
        // Two distinct valuations audited once each; the other two
        // K = 0 runs were verdict-cache hits.
        let (hits, misses) = session.verdicts().hit_stats();
        assert_eq!((hits, misses), (2, 2));
        assert_eq!(session.verdicts().len(), 2);
        // Counters tally served runs, not distinct valuations.
        let m = session.metrics();
        assert_eq!(m.inspector_certified.load(Ordering::Relaxed), 3);
        assert_eq!(
            m.inspector_refined.load(Ordering::Relaxed)
                + m.inspector_rejected.load(Ordering::Relaxed),
            1
        );
        assert!(m.inspector_audit.count() >= 2);
    }

    #[test]
    fn interval_storm_audits_once_and_skips_thereafter() {
        // Far shifts certify the interval K ∈ [20, ∞): the first
        // in-interval request audits once, every other valuation in
        // the storm is an interval hit — no audit, no point entry.
        let session = Session::builder().threads(1).build();
        let shape = session.parse_symbolic(SHIFTED, &["K"]).unwrap();
        for k in 40..72 {
            let out = session.run(&shape, &[("K", k)], 1).unwrap();
            assert_eq!(out.verdict, Some(Verdict::Certified), "K={k}");
            assert_eq!(out.interval_hit, k != 40, "K={k}");
            assert_eq!(out.iterations, 20);
        }
        let m = session.metrics();
        assert_eq!(m.inspector_audit.count(), 1, "exactly one audit");
        assert_eq!(m.inspector_interval_hits.load(Ordering::Relaxed), 31);
        assert_eq!(m.inspector_certified.load(Ordering::Relaxed), 32);
        let stats = session.verdicts().stats();
        assert_eq!(stats.interval_hits, 31);
        assert_eq!(stats.intervals, 1);
        assert_eq!(stats.entries, 0, "no point entries for boxed valuations");
        // A fresh out-of-interval valuation still audits normally.
        session.run(&shape, &[("K", 1)], 1).unwrap();
        assert_eq!(m.inspector_audit.count(), 2);
        assert_eq!(session.verdicts().len(), 1);
    }

    #[test]
    fn errors_unify_under_pdm_error() {
        let session = Session::new();
        assert!(matches!(
            session.parse("for broken {"),
            Err(PdmError::Parse(_))
        ));
        let shape = session.parse_symbolic(SYM, &["N"]).unwrap();
        // Missing parameter valuation surfaces as a runtime error.
        assert!(session.instantiate(&shape, &[]).is_err());
    }
}
