//! Wire protocol: length-prefixed JSON frames and the request
//! dispatcher.
//!
//! See the crate docs for the full message catalogue. This module owns
//! the two halves the server and clients share:
//!
//! * **Framing** — [`write_frame`] / [`read_frame`]: a 4-byte
//!   big-endian length followed by that many bytes of UTF-8 JSON, with
//!   frames capped at [`MAX_FRAME`] bytes. Reads distinguish clean EOF
//!   (peer closed between frames) from idleness (read timeout with no
//!   header byte yet) so server workers can poll a shutdown flag
//!   without dropping half-received frames.
//! * **Dispatch** — [`dispatch`]: one request JSON in, one response
//!   JSON out, every [`PdmError`] mapped to an `{"ok": false, ...}`
//!   response rather than a torn connection.

use crate::error::PdmError;
use crate::json::{self, Json};
use crate::session::{Deadline, Session};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};

/// Maximum frame payload (16 MiB) — far above any legitimate nest
/// source, small enough to bound a malicious header.
pub const MAX_FRAME: usize = 1 << 24;

/// One read attempt's outcome.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete payload.
    Message(String),
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// Read timeout fired before any header byte arrived — the
    /// connection is alive but idle (poll your shutdown flag and call
    /// again).
    Idle,
}

/// Write one frame: `u32` big-endian payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame. Timeouts before the first header byte return
/// [`Frame::Idle`]; timeouts *mid-frame* keep retrying (the peer is
/// mid-send), so a returned `Message` is always complete.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Frame> {
    let mut header = [0u8; 4];
    match read_exact_retrying(r, &mut header, true)? {
        ReadOutcome::Done => {}
        ReadOutcome::Eof => return Ok(Frame::Eof),
        ReadOutcome::Idle => return Ok(Frame::Idle),
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame header claims {len} bytes (max {MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len];
    match read_exact_retrying(r, &mut payload, false)? {
        ReadOutcome::Done => {}
        // EOF or persistent idleness mid-frame is a torn frame.
        ReadOutcome::Eof | ReadOutcome::Idle => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ));
        }
    }
    String::from_utf8(payload)
        .map(Frame::Message)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

enum ReadOutcome {
    Done,
    Eof,
    Idle,
}

/// How many *consecutive* zero-progress read timeouts a mid-frame read
/// tolerates before declaring the peer stalled. With the 50 ms socket
/// timeouts both sides use, this bounds a torn-frame-held-open peer
/// (client or server) to ~12 s instead of hanging the reader forever.
const MID_FRAME_STALL_LIMIT: u32 = 240;

/// `read_exact` that survives read timeouts: a timeout with zero bytes
/// read so far reports `Idle` when `idle_ok` (header position) — once
/// bytes have arrived, timeouts retry until the buffer fills or the
/// peer stalls past [`MID_FRAME_STALL_LIMIT`] consecutive timeouts.
fn read_exact_retrying(
    r: &mut impl Read,
    buf: &mut [u8],
    idle_ok: bool,
) -> std::io::Result<ReadOutcome> {
    let mut filled = 0usize;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-read",
                    ))
                };
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 && idle_ok {
                    return Ok(ReadOutcome::Idle);
                }
                // Mid-frame stall: keep waiting for the rest — but not
                // forever, or a half-sent frame pins this reader.
                stalls += 1;
                if stalls >= MID_FRAME_STALL_LIMIT {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Done)
}

/// Format a structural hash the way the wire expects: `"0x"` + 16 hex
/// digits. (JSON numbers are `f64`, which cannot carry 64 bits.)
pub fn hash_to_hex(hash: u64) -> String {
    format!("{hash:#018x}")
}

/// Parse a wire shape hash (with or without the `0x` prefix).
pub fn hex_to_hash(text: &str) -> Option<u64> {
    let digits = text.trim().trim_start_matches("0x");
    u64::from_str_radix(digits, 16).ok()
}

/// A dispatched response: the rendered body plus what the server's
/// metrics layer needs.
pub struct Response {
    /// Rendered response JSON (always a complete `{...}` document).
    pub body: String,
    /// Did the request succeed?
    pub ok: bool,
    /// Which op-metrics family this request belongs to:
    /// `"plan" | "instantiate" | "run" | "control"`.
    pub op_family: &'static str,
    /// Did the request ask the server to shut down?
    pub shutdown: bool,
}

/// Handle one request against a session. Never panics on malformed
/// input: every failure renders as `{"ok": false, "kind": ..., "error":
/// ...}`.
pub fn dispatch(session: &Session, request_text: &str) -> Response {
    let (op, result) = match json::parse(request_text) {
        Ok(req) => {
            let op = req.get_str("op").unwrap_or("").to_string();
            let result =
                request_deadline(&req).and_then(|deadline| handle(session, &op, &req, deadline));
            (op, result)
        }
        Err(e) => (
            String::new(),
            Err(PdmError::Protocol(format!("bad request JSON: {e}"))),
        ),
    };
    if matches!(result, Err(PdmError::DeadlineExceeded)) {
        session
            .metrics()
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
    }
    let op_family = match op.as_str() {
        "plan" => "plan",
        "instantiate" => "instantiate",
        "run" => "run",
        _ => "control",
    };
    let shutdown = op == "shutdown";
    match result {
        Ok(mut fields) => {
            fields.insert(0, ("ok".into(), Json::Bool(true)));
            fields.insert(1, ("op".into(), Json::Str(op.clone())));
            let (body, ok) = cap_frame(&op, json::render(&Json::Obj(fields)));
            Response {
                body,
                ok,
                op_family,
                shutdown,
            }
        }
        Err(e) => Response {
            body: error_body(&op, &e),
            ok: false,
            op_family,
            // A shutdown request takes effect even if rendering extras
            // failed — but errors can only arise pre-dispatch here, so
            // keep it simple: only successful shutdowns stop the server.
            shutdown: false,
        },
    }
}

/// Send-side [`MAX_FRAME`] enforcement. A response body too large to
/// frame is replaced by an in-band typed `protocol` error — without
/// this, [`write_frame`] refuses the oversize body with an untyped
/// `io::Error` and the server tears the connection down, leaving the
/// client nothing to diagnose. Error bodies are always small, so the
/// replacement itself always fits.
fn cap_frame(op: &str, body: String) -> (String, bool) {
    if body.len() <= MAX_FRAME {
        return (body, true);
    }
    let e = PdmError::Protocol(format!(
        "response of {} bytes exceeds the {MAX_FRAME}-byte frame limit",
        body.len()
    ));
    (error_body(op, &e), false)
}

/// Render the `{"ok": false, ...}` body for `e` — shared by dispatch
/// and by server paths that answer before dispatching (the
/// max-connections shed writes an `overloaded` body straight onto the
/// fresh socket).
pub fn error_body(op: &str, e: &PdmError) -> String {
    json::render(&Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("op".into(), Json::Str(op.into())),
        ("kind".into(), Json::Str(e.kind().into())),
        ("error".into(), Json::Str(e.to_string())),
    ]))
}

type Fields = Vec<(String, Json)>;

/// Parse the optional `deadline_ms` field into a cooperative budget
/// starting now (the budget covers dispatch, not network transit).
fn request_deadline(req: &Json) -> Result<Option<Deadline>, PdmError> {
    match req.get("deadline_ms") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) if n.fract() == 0.0 && *n >= 0.0 => Ok(Some(Deadline::in_ms(*n as u64))),
        Some(other) => Err(PdmError::Protocol(format!(
            "deadline_ms must be a non-negative integer, got {other:?}"
        ))),
    }
}

fn handle(
    session: &Session,
    op: &str,
    req: &Json,
    deadline: Option<Deadline>,
) -> Result<Fields, PdmError> {
    match op {
        "plan" => op_plan(session, req, deadline),
        "instantiate" => op_instantiate(session, req, deadline),
        "run" => op_run(session, req, deadline),
        "metrics" => Ok(vec![(
            "text".into(),
            Json::Str(crate::metrics::render_metrics(
                session.metrics(),
                session.cache(),
                session.verdicts(),
            )),
        )]),
        "stats" => Ok(op_stats(session)),
        "shutdown" => Ok(Vec::new()),
        "" => Err(PdmError::Protocol("missing \"op\" field".into())),
        other => Err(PdmError::Protocol(format!("unknown op {other:?}"))),
    }
}

/// Resolve the template a request refers to: by `source` (+ optional
/// `params` name list), or by `shape_hash` for shapes planned earlier.
fn resolve_template(
    session: &Session,
    req: &Json,
) -> Result<std::sync::Arc<pdm_core::template::PlanTemplate>, PdmError> {
    if let Some(source) = req.get_str("source") {
        let params = param_names(req)?;
        let refs: Vec<&str> = params.iter().map(|s| s.as_str()).collect();
        let nest = if refs.is_empty() {
            session.parse(source)?
        } else {
            session.parse_symbolic(source, &refs)?
        };
        session.plan(&nest)
    } else if let Some(hex) = req.get_str("shape_hash") {
        let hash = hex_to_hash(hex)
            .ok_or_else(|| PdmError::Protocol(format!("bad shape_hash {hex:?}")))?;
        session.plan_by_hash(hash)
    } else {
        Err(PdmError::Protocol(
            "request needs \"source\" or \"shape_hash\"".into(),
        ))
    }
}

fn param_names(req: &Json) -> Result<Vec<String>, PdmError> {
    match req.get("params") {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|p| match p {
                Json::Str(s) => Ok(s.clone()),
                other => Err(PdmError::Protocol(format!(
                    "params entries must be strings, got {other:?}"
                ))),
            })
            .collect(),
        Some(other) => Err(PdmError::Protocol(format!(
            "params must be an array of names, got {other:?}"
        ))),
    }
}

/// `values`: `{"N": 64, ...}` → integer valuation.
fn param_values(req: &Json) -> Result<Vec<(String, i64)>, PdmError> {
    match req.get("values") {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(k, v)| match v {
                Json::Num(n) if n.fract() == 0.0 => Ok((k.clone(), *n as i64)),
                other => Err(PdmError::Protocol(format!(
                    "value for {k:?} must be an integer, got {other:?}"
                ))),
            })
            .collect(),
        Some(other) => Err(PdmError::Protocol(format!(
            "values must be an object, got {other:?}"
        ))),
    }
}

fn template_fields(template: &pdm_core::template::PlanTemplate) -> Fields {
    vec![
        (
            "shape_hash".into(),
            Json::Str(hash_to_hex(template.nest().structural_hash())),
        ),
        ("depth".into(), Json::Num(template.depth() as f64)),
        ("doall".into(), Json::Num(template.doall_count() as f64)),
        (
            "partitions".into(),
            Json::Num(template.partition_count() as f64),
        ),
        (
            "params".into(),
            Json::Arr(
                template
                    .param_names()
                    .iter()
                    .map(|p| Json::Str(p.clone()))
                    .collect(),
            ),
        ),
    ]
}

fn op_plan(session: &Session, req: &Json, deadline: Option<Deadline>) -> Result<Fields, PdmError> {
    // Every op honors `deadline_ms`: checked on entry (the request may
    // have queued behind slow frames) and after each pipeline stage.
    Deadline::check(deadline)?;
    let template = resolve_template(session, req)?;
    Deadline::check(deadline)?;
    Ok(template_fields(&template))
}

fn op_instantiate(
    session: &Session,
    req: &Json,
    deadline: Option<Deadline>,
) -> Result<Fields, PdmError> {
    Deadline::check(deadline)?;
    let template = resolve_template(session, req)?;
    Deadline::check(deadline)?;
    let values = param_values(req)?;
    let refs: Vec<(&str, i64)> = values.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let instance = session.instantiate_template(&template, &refs)?;
    Deadline::check(deadline)?;
    let groups = pdm_runtime::exec::group_count(&instance.plan)?;
    let mut fields = template_fields(&template);
    fields.push(("groups".into(), Json::Num(groups as f64)));
    Ok(fields)
}

fn op_run(session: &Session, req: &Json, deadline: Option<Deadline>) -> Result<Fields, PdmError> {
    let template = resolve_template(session, req)?;
    let values = param_values(req)?;
    let refs: Vec<(&str, i64)> = values.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let seed = match req.get("seed") {
        None | Some(Json::Null) => 1u64,
        Some(Json::Num(n)) if n.fract() == 0.0 && *n >= 0.0 => *n as u64,
        Some(other) => {
            return Err(PdmError::Protocol(format!(
                "seed must be a non-negative integer, got {other:?}"
            )))
        }
    };
    let outcome = session.run_template_within(&template, &refs, seed, deadline)?;
    let mut fields = template_fields(&template);
    fields.push(("iterations".into(), Json::Num(outcome.iterations as f64)));
    fields.push(("checksum".into(), Json::Num(outcome.checksum as f64)));
    // Speculatively planned templates report which executor the
    // inspector's verdict picked ("certified" | "refined" | "rejected")
    // and whether a certified valuation interval answered the gate
    // without an audit; uninspected runs omit both fields.
    if let Some(verdict) = &outcome.verdict {
        fields.push(("verdict".into(), Json::Str(verdict.kind().into())));
        fields.push(("interval_hit".into(), Json::Bool(outcome.interval_hit)));
    }
    fields.push((
        "observed_threads".into(),
        Json::Num(rayon::last_region_threads() as f64),
    ));
    fields.push((
        "observed_steals".into(),
        Json::Num(rayon::last_region_steals() as f64),
    ));
    Ok(fields)
}

fn op_stats(session: &Session) -> Fields {
    let stats = session.cache_stats();
    let shards = session
        .cache()
        .shard_stats()
        .iter()
        .map(|s| Json::Obj(crate::metrics::cache_stats_fields(s)))
        .collect();
    vec![
        (
            "cache".into(),
            Json::Obj(crate::metrics::cache_stats_fields(&stats)),
        ),
        ("shards".into(), Json::Arr(shards)),
        (
            "requests_total".into(),
            Json::Num(session.metrics().total_requests() as f64),
        ),
        (
            "template_acquire_mean_us".into(),
            Json::Num(session.metrics().template_acquire.mean_us()),
        ),
    ]
}

/// Poll-friendly shutdown flag shared between a server and its workers.
#[derive(Debug, Default)]
pub struct ShutdownFlag(AtomicBool);

impl ShutdownFlag {
    /// A fresh, unset flag.
    pub fn new() -> ShutdownFlag {
        ShutdownFlag::default()
    }

    /// Request shutdown.
    pub fn set(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has shutdown been requested?
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"op":"stats"}"#).unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Frame::Message(r#"{"op":"stats"}"#.into())
        );
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Message("second".into()));
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Eof);
    }

    #[test]
    fn oversized_and_torn_frames_error() {
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(read_frame(&mut huge.as_slice()).is_err());

        let mut torn = Vec::new();
        write_frame(&mut torn, "hello").unwrap();
        torn.truncate(torn.len() - 2);
        assert!(read_frame(&mut torn.as_slice()).is_err());
    }

    #[test]
    fn hash_hex_round_trips() {
        for h in [0u64, 1, 0xdead_beef_1234_5678, u64::MAX] {
            assert_eq!(hex_to_hash(&hash_to_hex(h)), Some(h));
        }
        assert_eq!(hex_to_hash("nope"), None);
        assert_eq!(hex_to_hash("0xdeadbeef"), Some(0xdead_beef));
    }

    #[test]
    fn dispatch_answers_plan_and_errors_in_band() {
        let session = Session::builder().cache_capacity(2, 8).threads(1).build();
        let resp = dispatch(
            &session,
            r#"{"op":"plan","source":"for i = 1..=N { A[i] = A[i - 1] + 1; }","params":["N"]}"#,
        );
        assert!(resp.ok, "{}", resp.body);
        let body = crate::json::parse(&resp.body).unwrap();
        assert_eq!(body.get_num("depth"), Some(1.0));
        let hash = body.get_str("shape_hash").unwrap().to_string();

        // Replay by hash, then run at a size.
        let resp = dispatch(
            &session,
            &format!(r#"{{"op":"run","shape_hash":"{hash}","values":{{"N":10}}}}"#),
        );
        assert!(resp.ok, "{}", resp.body);
        let body = crate::json::parse(&resp.body).unwrap();
        assert_eq!(body.get_num("iterations"), Some(10.0));

        // Malformed request: in-band error, connection-safe.
        let resp = dispatch(&session, "{nope");
        assert!(!resp.ok);
        let body = crate::json::parse(&resp.body).unwrap();
        assert_eq!(body.get_str("kind"), Some("protocol"));

        // Unknown hash: typed error.
        let resp = dispatch(
            &session,
            r#"{"op":"plan","shape_hash":"0x0000000000000001"}"#,
        );
        assert!(!resp.ok);
        let body = crate::json::parse(&resp.body).unwrap();
        assert_eq!(body.get_str("kind"), Some("unknown_shape"));
    }

    #[test]
    fn deadline_ms_is_honored_and_validated() {
        let session = Session::builder().cache_capacity(2, 8).threads(1).build();
        // Invalid budget: typed protocol error.
        let resp = dispatch(&session, r#"{"op":"run","deadline_ms":-5}"#);
        assert!(!resp.ok);
        let body = crate::json::parse(&resp.body).unwrap();
        assert_eq!(body.get_str("kind"), Some("protocol"));

        // A generous budget completes normally.
        let resp = dispatch(
            &session,
            r#"{"op":"run","source":"for i = 1..=N { A[i] = A[i - 1] + 1; }","params":["N"],"values":{"N":10},"deadline_ms":60000}"#,
        );
        assert!(resp.ok, "{}", resp.body);

        // A zero budget expires before the run stage boundary.
        let resp = dispatch(
            &session,
            r#"{"op":"run","source":"for i = 1..=N { A[i] = A[i - 1] + 1; }","params":["N"],"values":{"N":10},"deadline_ms":0}"#,
        );
        assert!(!resp.ok, "{}", resp.body);
        let body = crate::json::parse(&resp.body).unwrap();
        assert_eq!(body.get_str("kind"), Some("deadline_exceeded"));
        assert_eq!(
            session
                .metrics()
                .deadline_exceeded
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn oversize_response_bodies_degrade_to_a_typed_protocol_error() {
        let (body, ok) = cap_frame("run", "x".repeat(MAX_FRAME + 1));
        assert!(!ok);
        let parsed = crate::json::parse(&body).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(parsed.get_str("kind"), Some("protocol"));
        assert_eq!(parsed.get_str("op"), Some("run"));
        assert!(body.len() <= MAX_FRAME, "the replacement must fit");
        // In-bounds bodies pass through untouched.
        let (body, ok) = cap_frame("run", "{}".into());
        assert!(ok);
        assert_eq!(body, "{}");
        // The io-level guard in write_frame still refuses oversize
        // payloads outright (defense in depth for non-dispatch
        // callers), and nothing reaches the wire when it fires.
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &"y".repeat(MAX_FRAME + 1)).is_err());
        assert!(sink.is_empty());
    }

    #[test]
    fn every_op_honors_deadline_ms() {
        let session = Session::builder().cache_capacity(2, 8).threads(1).build();
        // Regression: plan and instantiate used to ignore the budget
        // entirely — only run checked it.
        for op in ["plan", "instantiate", "run"] {
            let resp = dispatch(
                &session,
                &format!(
                    r#"{{"op":"{op}","source":"for i = 1..=N {{ A[i] = A[i - 1] + 1; }}","params":["N"],"values":{{"N":10}},"deadline_ms":0}}"#
                ),
            );
            assert!(!resp.ok, "{op}: {}", resp.body);
            let body = crate::json::parse(&resp.body).unwrap();
            assert_eq!(body.get_str("kind"), Some("deadline_exceeded"), "{op}");
        }
        assert_eq!(
            session.metrics().deadline_exceeded.load(Ordering::Relaxed),
            3
        );
    }

    #[test]
    fn run_reports_the_inspector_verdict() {
        let session = Session::builder().cache_capacity(2, 8).threads(1).build();
        let resp = dispatch(
            &session,
            r#"{"op":"run","source":"for i = 0..=19 { A[i + K] = A[i] + 1; }","params":["K"],"values":{"K":0}}"#,
        );
        assert!(resp.ok, "{}", resp.body);
        let body = crate::json::parse(&resp.body).unwrap();
        assert_eq!(body.get_str("verdict"), Some("certified"));
        assert_eq!(body.get_num("iterations"), Some(20.0));
        // K = 0 sits inside the shift-overlap range, so no interval
        // certifies it — the audit ran and the flag is false.
        assert_eq!(body.get("interval_hit"), Some(&Json::Bool(false)));
        // A far shift certifies K ∈ [20, ∞); a second distinct
        // valuation inside that interval reports an interval hit.
        let resp = dispatch(
            &session,
            r#"{"op":"run","source":"for i = 0..=19 { A[i + K] = A[i] + 1; }","params":["K"],"values":{"K":40}}"#,
        );
        assert!(resp.ok, "{}", resp.body);
        let resp = dispatch(
            &session,
            r#"{"op":"run","source":"for i = 0..=19 { A[i + K] = A[i] + 1; }","params":["K"],"values":{"K":41}}"#,
        );
        assert!(resp.ok, "{}", resp.body);
        let body = crate::json::parse(&resp.body).unwrap();
        assert_eq!(body.get_str("verdict"), Some("certified"));
        assert_eq!(body.get("interval_hit"), Some(&Json::Bool(true)));
        // Parameter-free runs omit the fields.
        let resp = dispatch(
            &session,
            r#"{"op":"run","source":"for i = 0..=9 { A[i] = A[i] + 1; }"}"#,
        );
        assert!(resp.ok, "{}", resp.body);
        let body = crate::json::parse(&resp.body).unwrap();
        assert!(body.get_str("verdict").is_none());
        assert!(body.get("interval_hit").is_none());
    }

    #[test]
    fn error_body_renders_overloaded() {
        let body = error_body("", &PdmError::Overloaded);
        let parsed = crate::json::parse(&body).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(parsed.get_str("kind"), Some("overloaded"));
    }
}
