//! [`PlanServer`] — a long-running plan-serving process, and
//! [`ServiceClient`] — the matching blocking client.
//!
//! The server owns a [`Session`] (so every connection shares one
//! sharded template cache and one metrics sink) and a bound
//! `TcpListener`. [`PlanServer::serve`] runs the whole thing inside one
//! work-stealing region from the vendored pool: the accept loop is a
//! spawned job, and each accepted connection becomes another spawned
//! job that idle workers steal. No threads are created beyond the
//! region's workers, and a `shutdown` request (or
//! [`PlanServer::shutdown_handle`]) drains the region cleanly: the
//! acceptor stops accepting and every handler notices the flag at its
//! next read timeout.

use crate::error::PdmError;
use crate::faults;
use crate::metrics::ServiceMetrics;
use crate::session::Session;
use crate::wire::{self, Frame, ShutdownFlag};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a blocked read waits before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Decrement-on-drop guard for the live-connection gauge: the count
/// stays honest even when a handler panics (the drop runs during the
/// unwind, before the region sink swallows the payload).
struct ActiveGuard<'a>(&'a ServiceMetrics);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.active_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A plan-serving endpoint: one shared [`Session`] behind a TCP
/// listener speaking the length-prefixed JSON protocol (crate docs).
pub struct PlanServer {
    listener: TcpListener,
    session: Arc<Session>,
    workers: usize,
    shutdown: Arc<ShutdownFlag>,
    max_connections: usize,
    /// A fatal acceptor error, parked here by the accept loop for
    /// [`PlanServer::serve`] to surface after the region drains.
    accept_error: Mutex<Option<std::io::Error>>,
}

impl PlanServer {
    /// Bind to `addr` (use port 0 for an OS-assigned port) serving
    /// `session`, handling connections on `workers` pool workers (at
    /// least 2: one accepts, the rest handle). The connection cap
    /// defaults to the session's `PDM_MAX_CONNECTIONS` knob.
    pub fn bind(
        addr: impl ToSocketAddrs,
        session: Arc<Session>,
        workers: usize,
    ) -> std::io::Result<PlanServer> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking so the acceptor can poll the shutdown flag.
        listener.set_nonblocking(true)?;
        let max_connections = session.config().max_connections.max(1);
        Ok(PlanServer {
            listener,
            session,
            workers: workers.max(2),
            shutdown: Arc::new(ShutdownFlag::new()),
            max_connections,
            accept_error: Mutex::new(None),
        })
    }

    /// Override the connection cap (the backpressure gate: connections
    /// past this are answered with an in-band `overloaded` error and
    /// closed instead of queuing unboundedly).
    pub fn with_max_connections(mut self, max: usize) -> PlanServer {
        self.max_connections = max.max(1);
        self
    }

    /// The bound address (ask after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag another thread can set to stop [`PlanServer::serve`].
    pub fn shutdown_handle(&self) -> Arc<ShutdownFlag> {
        Arc::clone(&self.shutdown)
    }

    /// The session this server fronts.
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// Accept and serve until a `shutdown` request arrives or the
    /// [`PlanServer::shutdown_handle`] flag is set. Blocks the calling
    /// thread (it becomes one of the region's workers).
    ///
    /// Handler jobs run under a panic **sink**: a panicking handler
    /// increments `pdm_panics_total` and dies alone — the region, the
    /// other connections, and the acceptor keep going. A fatal
    /// listener error stops the acceptor, sets the shutdown flag (so
    /// handlers drain), and is returned from here instead of being
    /// swallowed.
    pub fn serve(&self) -> std::io::Result<()> {
        let metrics = self.session.metrics();
        rayon::scope_with_sink(
            self.workers,
            |payload| {
                metrics.panics.fetch_add(1, Ordering::Relaxed);
                // The payload is intentionally dropped: the panic is
                // already isolated to its connection, whose socket
                // closed when the handler's stack unwound.
                let _ = rayon::panic_message(&*payload);
            },
            |sc| {
                sc.spawn(|sc| self.accept_loop(sc));
            },
        );
        match lock_recovering(&self.accept_error).take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The acceptor job: poll-accept, spawn a handler job per
    /// connection (or shed it at the cap), stop when the flag goes up.
    fn accept_loop<'env>(&'env self, sc: &rayon::Scope<'env>) {
        let metrics = self.session.metrics();
        while !self.shutdown.is_set() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Backpressure gate: past the cap, answer with an
                    // in-band `overloaded` error and close, instead of
                    // queuing the connection behind busy workers.
                    let active = metrics.active_connections.load(Ordering::Relaxed);
                    if active >= self.max_connections as u64 {
                        metrics.shed.fetch_add(1, Ordering::Relaxed);
                        let mut s = stream;
                        let _ =
                            wire::write_frame(&mut s, &wire::error_body("", &PdmError::Overloaded));
                        continue;
                    }
                    // Count the connection as live *here*, before the
                    // handler job is stolen, so a burst of accepts
                    // cannot overshoot the cap; the handler's guard
                    // decrements on any exit, panic included.
                    metrics.active_connections.fetch_add(1, Ordering::Relaxed);
                    metrics.connections.fetch_add(1, Ordering::Relaxed);
                    sc.spawn(move |_| self.handle_connection(stream));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Listener-level failure: record it, stop everything
                // (handlers notice the flag at their next poll), and
                // let serve() surface it — never die silently.
                Err(e) => {
                    metrics.accept_errors.fetch_add(1, Ordering::Relaxed);
                    *lock_recovering(&self.accept_error) = Some(e);
                    self.shutdown.set();
                    break;
                }
            }
        }
    }

    /// One connection: frames in, responses out, until EOF, shutdown,
    /// or a socket error.
    fn handle_connection(&self, stream: TcpStream) {
        let metrics = self.session.metrics();
        let _active = ActiveGuard(metrics);
        let fault = self.session.faults();
        let _ = stream.set_nodelay(true);
        // Timeouts turn blocked reads into Frame::Idle so the handler
        // can poll the shutdown flag.
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let mut reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => return,
        };
        let mut writer = stream;
        loop {
            match wire::read_frame(&mut reader) {
                Ok(Frame::Message(text)) => {
                    // Fault probes, in arrival order: a stalled read, a
                    // dropped socket, a handler panic — each models a
                    // distinct production failure at this exact point.
                    if fault.fire(faults::WIRE_DELAY) {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    if fault.fire(faults::NET_DROP) {
                        return;
                    }
                    fault.panic_if(faults::SERVER_HANDLER);
                    let t0 = Instant::now();
                    let resp = wire::dispatch(&self.session, &text);
                    let op = match resp.op_family {
                        "plan" => &metrics.plan,
                        "instantiate" => &metrics.instantiate,
                        "run" => &metrics.run,
                        _ => &metrics.control,
                    };
                    op.record(t0.elapsed(), resp.ok);
                    if fault.fire(faults::WIRE_TORN) {
                        let _ = write_torn_frame(&mut writer, &resp.body);
                        return;
                    }
                    if wire::write_frame(&mut writer, &resp.body).is_err() {
                        return;
                    }
                    if resp.shutdown {
                        self.shutdown.set();
                        return;
                    }
                }
                Ok(Frame::Idle) => {
                    if self.shutdown.is_set() {
                        return;
                    }
                }
                Ok(Frame::Eof) | Err(_) => return,
            }
        }
    }
}

/// Mutex lock with poison recovery: a panicked handler cannot make the
/// accept-error slot unusable (same policy as the runtime's caches).
fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// The `wire.torn` fault: a header promising the full payload followed
/// by only half of it, then the socket closes — what a crashed or
/// misbehaving server looks like to a client mid-response.
fn write_torn_frame(w: &mut impl std::io::Write, payload: &str) -> std::io::Result<()> {
    let bytes = payload.as_bytes();
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(&bytes[..bytes.len() / 2])?;
    w.flush()
}

/// Maximum backoff delay between reconnect attempts.
const MAX_BACKOFF: Duration = Duration::from_secs(1);

/// Configuration for a [`ServiceClient`] connection.
///
/// ```no_run
/// use pdm_service::ServiceClient;
/// use std::time::Duration;
///
/// let client = ServiceClient::builder()
///     .read_timeout(Duration::from_millis(500))
///     .connect_timeout(Duration::from_millis(200))
///     .retries(5)
///     .connect("127.0.0.1:7077")
///     .unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    read_timeout: Duration,
    connect_timeout: Option<Duration>,
    retries: u32,
    backoff_base: Duration,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        ClientBuilder {
            read_timeout: Duration::from_millis(
                pdm_runtime::RuntimeConfig::global().client_read_timeout_ms,
            ),
            connect_timeout: None,
            retries: 3,
            backoff_base: Duration::from_millis(25),
        }
    }
}

impl ClientBuilder {
    /// How long one [`ServiceClient::call_raw`] waits for a response
    /// before giving up with a timeout error (default: the
    /// `PDM_CLIENT_READ_TIMEOUT_MS` knob, 10 s out of the box — a
    /// stalled server can no longer hang a client forever).
    pub fn read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = t.max(Duration::from_millis(1));
        self
    }

    /// Bound the TCP connect itself (default: the OS default).
    pub fn connect_timeout(mut self, t: Duration) -> Self {
        self.connect_timeout = Some(t);
        self
    }

    /// Reconnect-and-retry attempts for
    /// [`ServiceClient::call_retrying`] (default 3, on top of the
    /// initial attempt).
    pub fn retries(mut self, n: u32) -> Self {
        self.retries = n;
        self
    }

    /// Connect with this configuration.
    pub fn connect(self, addr: impl ToSocketAddrs) -> std::io::Result<ServiceClient> {
        let mut last = None;
        for candidate in addr.to_socket_addrs()? {
            let attempt = match self.connect_timeout {
                Some(t) => TcpStream::connect_timeout(&candidate, t),
                None => TcpStream::connect(candidate),
            };
            match attempt {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    // Short socket timeout + Idle retries in call_raw:
                    // the *effective* deadline is read_timeout, but the
                    // loop stays responsive for mid-frame progress.
                    stream.set_read_timeout(Some(POLL_INTERVAL.min(self.read_timeout)))?;
                    return Ok(ServiceClient {
                        stream,
                        addr: candidate,
                        config: self,
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        }))
    }
}

/// A blocking client for the wire protocol: send one request document,
/// receive one response document, in order, over a persistent
/// connection. Reads are bounded by the builder's timeout, and
/// [`ServiceClient::call_retrying`] reconnects with capped exponential
/// backoff on transient failures.
pub struct ServiceClient {
    stream: TcpStream,
    addr: std::net::SocketAddr,
    config: ClientBuilder,
}

impl ServiceClient {
    /// Connect to a serving endpoint with default timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ServiceClient> {
        ClientBuilder::default().connect(addr)
    }

    /// Start configuring a client.
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Drop the current connection and dial the same endpoint again.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let fresh = self.config.clone().connect(self.addr)?;
        self.stream = fresh.stream;
        Ok(())
    }

    /// Send `request` (a JSON document) and block for the response
    /// text, at most the configured read timeout. Responses arrive
    /// strictly in request order. A timeout leaves the connection in an
    /// indeterminate state (a late response may still be in flight) —
    /// [`ServiceClient::reconnect`] before reusing it.
    pub fn call_raw(&mut self, request: &str) -> std::io::Result<String> {
        wire::write_frame(&mut self.stream, request)?;
        let start = Instant::now();
        loop {
            match wire::read_frame(&mut self.stream)? {
                Frame::Message(text) => return Ok(text),
                Frame::Eof => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                // The socket timeout fired with no header byte yet:
                // retry until the configured deadline, then surface a
                // typed timeout instead of hanging forever.
                Frame::Idle => {
                    if start.elapsed() >= self.config.read_timeout {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!(
                                "no response within {:?} (server stalled or unreachable)",
                                self.config.read_timeout
                            ),
                        ));
                    }
                }
            }
        }
    }

    /// [`ServiceClient::call_raw`] plus JSON parsing of the response.
    /// Read timeouts surface as [`PdmError::Timeout`]; a request too
    /// large to frame is refused with a typed [`PdmError::Protocol`]
    /// *before* anything touches the socket, so the connection stays
    /// usable.
    pub fn call(&mut self, request: &str) -> Result<crate::json::Json, crate::error::PdmError> {
        if request.len() > wire::MAX_FRAME {
            return Err(crate::error::PdmError::Protocol(format!(
                "request of {} bytes exceeds the {}-byte frame limit",
                request.len(),
                wire::MAX_FRAME
            )));
        }
        let text = self.call_raw(request).map_err(|e| {
            if e.kind() == std::io::ErrorKind::TimedOut {
                crate::error::PdmError::Timeout(e.to_string())
            } else {
                crate::error::PdmError::from(e)
            }
        })?;
        crate::json::parse(&text)
            .map_err(|e| crate::error::PdmError::Protocol(format!("bad response JSON: {e}")))
    }

    /// [`ServiceClient::call`] with capped exponential-backoff
    /// reconnect on transient failures (timeouts, dropped sockets,
    /// in-band `overloaded` / `planning_failed` sheds).
    ///
    /// **Only for idempotent requests** (`plan`, `instantiate`, `run`
    /// with a seed, `stats`, `metrics`): after a timeout the original
    /// request may still execute server-side, so a retried non-idempotent
    /// op could run twice.
    pub fn call_retrying(
        &mut self,
        request: &str,
    ) -> Result<crate::json::Json, crate::error::PdmError> {
        let mut delay = self.config.backoff_base;
        let mut last_err: Option<crate::error::PdmError> = None;
        let mut last_body: Option<crate::json::Json> = None;
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2).min(MAX_BACKOFF);
                if let Err(e) = self.reconnect() {
                    last_err = Some(e.into());
                    last_body = None;
                    continue;
                }
            }
            match self.call(request) {
                Ok(body) => {
                    let retryable_in_band = body.get("ok") == Some(&crate::json::Json::Bool(false))
                        && matches!(
                            body.get_str("kind"),
                            Some("overloaded") | Some("planning_failed") | Some("timeout")
                        );
                    if !retryable_in_band {
                        return Ok(body);
                    }
                    last_body = Some(body);
                    last_err = None;
                }
                Err(e) if e.is_retryable() => {
                    last_err = Some(e);
                    last_body = None;
                }
                Err(e) => return Err(e),
            }
        }
        // Retries exhausted: hand back whatever the final attempt saw.
        match last_body {
            Some(body) => Ok(body),
            None => Err(last_err
                .unwrap_or_else(|| crate::error::PdmError::Io("no attempts were made".into()))),
        }
    }

    /// Ask the server for its metrics page (the `metrics` op).
    pub fn metrics_text(&mut self) -> Result<String, crate::error::PdmError> {
        let body = self.call(r#"{"op":"metrics"}"#)?;
        body.get_str("text")
            .map(str::to_string)
            .ok_or_else(|| crate::error::PdmError::Protocol("metrics response lacked text".into()))
    }

    /// Tell the server to shut down. The server confirms, then stops
    /// accepting and drains.
    pub fn shutdown(&mut self) -> Result<(), crate::error::PdmError> {
        self.call(r#"{"op":"shutdown"}"#).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_server(
        workers: usize,
    ) -> (
        std::net::SocketAddr,
        Arc<ShutdownFlag>,
        std::thread::JoinHandle<()>,
    ) {
        let session = Arc::new(Session::builder().cache_capacity(4, 16).threads(1).build());
        let server = PlanServer::bind("127.0.0.1:0", session, workers).unwrap();
        let addr = server.local_addr().unwrap();
        let flag = server.shutdown_handle();
        let handle = std::thread::spawn(move || {
            server.serve().unwrap();
        });
        (addr, flag, handle)
    }

    #[test]
    fn serves_plan_and_run_over_tcp() {
        let (addr, _flag, handle) = start_server(2);
        let mut client = ServiceClient::connect(addr).unwrap();

        let resp = client
            .call(
                r#"{"op":"plan","source":"for i = 1..=N { A[i + 3] = A[i] + 1; }","params":["N"]}"#,
            )
            .unwrap();
        assert_eq!(resp.get("ok"), Some(&crate::json::Json::Bool(true)));
        let hash = resp.get_str("shape_hash").unwrap().to_string();

        let resp = client
            .call(&format!(
                r#"{{"op":"run","shape_hash":"{hash}","values":{{"N":12}},"seed":3}}"#
            ))
            .unwrap();
        assert_eq!(resp.get_num("iterations"), Some(12.0));

        let text = client.metrics_text().unwrap();
        assert!(text.contains("pdm_connections_total 1"));
        assert!(text.contains("pdm_requests_total{op=\"plan\"} 1"));

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_flag_stops_an_idle_server() {
        let (addr, flag, handle) = start_server(2);
        // Prove it is alive, then stop it externally.
        let mut client = ServiceClient::connect(addr).unwrap();
        client.call(r#"{"op":"stats"}"#).unwrap();
        flag.set();
        handle.join().unwrap();
    }

    #[test]
    fn client_times_out_on_a_silent_server() {
        // A listener that accepts nothing: connects land in the backlog
        // and every read stalls. Before the timeout work this hung
        // forever.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = ServiceClient::builder()
            .read_timeout(Duration::from_millis(150))
            .connect_timeout(Duration::from_millis(500))
            .connect(addr)
            .unwrap();
        let t0 = Instant::now();
        let err = client.call(r#"{"op":"stats"}"#).unwrap_err();
        assert!(matches!(err, PdmError::Timeout(_)), "{err:?}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "timeout took {:?}",
            t0.elapsed()
        );
        drop(listener);
    }

    #[test]
    fn overloaded_connections_are_shed_in_band() {
        let session = Arc::new(Session::builder().cache_capacity(2, 8).threads(1).build());
        let server = PlanServer::bind("127.0.0.1:0", session, 3)
            .unwrap()
            .with_max_connections(1);
        let addr = server.local_addr().unwrap();
        let flag = server.shutdown_handle();
        let handle = std::thread::spawn(move || {
            server.serve().unwrap();
        });

        // First connection occupies the only slot (the call guarantees
        // it was accepted and is being served).
        let mut c1 = ServiceClient::connect(addr).unwrap();
        c1.call(r#"{"op":"stats"}"#).unwrap();

        // Second connection: shed at accept with an in-band error
        // before any request is even sent.
        let mut c2 = TcpStream::connect(addr).unwrap();
        c2.set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let text = loop {
            match wire::read_frame(&mut c2).unwrap() {
                Frame::Message(t) => break t,
                Frame::Idle => assert!(Instant::now() < deadline, "no shed frame arrived"),
                Frame::Eof => panic!("connection closed without a shed frame"),
            }
        };
        let body = crate::json::parse(&text).unwrap();
        assert_eq!(body.get_str("kind"), Some("overloaded"));

        // The surviving connection still serves, and the shed shows up
        // on the metrics page.
        let metrics = c1.metrics_text().unwrap();
        assert!(metrics.contains("pdm_shed_total 1"), "{metrics}");
        flag.set();
        handle.join().unwrap();
    }

    #[test]
    fn oversize_requests_are_refused_before_the_socket() {
        // A listener that never accepts: if the guard missed, the call
        // would block writing 16 MiB into a dead backlog.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = ServiceClient::builder()
            .read_timeout(Duration::from_millis(100))
            .connect(addr)
            .unwrap();
        let huge = format!(
            r#"{{"op":"plan","source":"{}"}}"#,
            "x".repeat(wire::MAX_FRAME)
        );
        let err = client.call(&huge).unwrap_err();
        assert!(matches!(err, PdmError::Protocol(_)), "{err:?}");
        assert_eq!(err.kind(), "protocol");
        // The connection is still usable for in-bounds requests (it
        // just times out here because nobody is serving).
        let err = client.call(r#"{"op":"stats"}"#).unwrap_err();
        assert!(matches!(err, PdmError::Timeout(_)), "{err:?}");
        drop(listener);
    }

    #[test]
    fn call_retrying_survives_a_dropped_socket() {
        // Arm net.drop for exactly one fire: the first request's socket
        // drops with no response; the retry reconnects and succeeds.
        let session = Arc::new(
            Session::builder()
                .cache_capacity(2, 8)
                .threads(1)
                .faults(crate::faults::Faults::parse("net.drop:1:1", 0).unwrap())
                .build(),
        );
        let server = PlanServer::bind("127.0.0.1:0", session, 3).unwrap();
        let addr = server.local_addr().unwrap();
        let flag = server.shutdown_handle();
        let handle = std::thread::spawn(move || {
            server.serve().unwrap();
        });

        let mut client = ServiceClient::builder()
            .read_timeout(Duration::from_secs(5))
            .connect(addr)
            .unwrap();
        let body = client.call_retrying(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(body.get("ok"), Some(&crate::json::Json::Bool(true)));
        flag.set();
        handle.join().unwrap();
    }
}
