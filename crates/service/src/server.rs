//! [`PlanServer`] — a long-running plan-serving process, and
//! [`ServiceClient`] — the matching blocking client.
//!
//! The server owns a [`Session`] (so every connection shares one
//! sharded template cache and one metrics sink) and a bound
//! `TcpListener`. [`PlanServer::serve`] runs the whole thing inside one
//! work-stealing region from the vendored pool: the accept loop is a
//! spawned job, and each accepted connection becomes another spawned
//! job that idle workers steal. No threads are created beyond the
//! region's workers, and a `shutdown` request (or
//! [`PlanServer::shutdown_handle`]) drains the region cleanly: the
//! acceptor stops accepting and every handler notices the flag at its
//! next read timeout.

use crate::session::Session;
use crate::wire::{self, Frame, ShutdownFlag};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a blocked read waits before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A plan-serving endpoint: one shared [`Session`] behind a TCP
/// listener speaking the length-prefixed JSON protocol (crate docs).
pub struct PlanServer {
    listener: TcpListener,
    session: Arc<Session>,
    workers: usize,
    shutdown: Arc<ShutdownFlag>,
}

impl PlanServer {
    /// Bind to `addr` (use port 0 for an OS-assigned port) serving
    /// `session`, handling connections on `workers` pool workers (at
    /// least 2: one accepts, the rest handle).
    pub fn bind(
        addr: impl ToSocketAddrs,
        session: Arc<Session>,
        workers: usize,
    ) -> std::io::Result<PlanServer> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking so the acceptor can poll the shutdown flag.
        listener.set_nonblocking(true)?;
        Ok(PlanServer {
            listener,
            session,
            workers: workers.max(2),
            shutdown: Arc::new(ShutdownFlag::new()),
        })
    }

    /// The bound address (ask after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag another thread can set to stop [`PlanServer::serve`].
    pub fn shutdown_handle(&self) -> Arc<ShutdownFlag> {
        Arc::clone(&self.shutdown)
    }

    /// The session this server fronts.
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// Accept and serve until a `shutdown` request arrives or the
    /// [`PlanServer::shutdown_handle`] flag is set. Blocks the calling
    /// thread (it becomes one of the region's workers).
    pub fn serve(&self) -> std::io::Result<()> {
        rayon::scope_with(self.workers, |sc| {
            sc.spawn(|sc| self.accept_loop(sc));
        });
        Ok(())
    }

    /// The acceptor job: poll-accept, spawn a handler job per
    /// connection, stop when the flag goes up.
    fn accept_loop<'env>(&'env self, sc: &rayon::Scope<'env>) {
        while !self.shutdown.is_set() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.session
                        .metrics()
                        .connections
                        .fetch_add(1, Ordering::Relaxed);
                    sc.spawn(move |_| self.handle_connection(stream));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Listener-level failure: stop serving.
                Err(_) => break,
            }
        }
    }

    /// One connection: frames in, responses out, until EOF, shutdown,
    /// or a socket error.
    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        // Timeouts turn blocked reads into Frame::Idle so the handler
        // can poll the shutdown flag.
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let mut reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => return,
        };
        let mut writer = stream;
        loop {
            match wire::read_frame(&mut reader) {
                Ok(Frame::Message(text)) => {
                    let t0 = Instant::now();
                    let resp = wire::dispatch(&self.session, &text);
                    let metrics = self.session.metrics();
                    let op = match resp.op_family {
                        "plan" => &metrics.plan,
                        "instantiate" => &metrics.instantiate,
                        "run" => &metrics.run,
                        _ => &metrics.control,
                    };
                    op.record(t0.elapsed(), resp.ok);
                    if wire::write_frame(&mut writer, &resp.body).is_err() {
                        return;
                    }
                    if resp.shutdown {
                        self.shutdown.set();
                        return;
                    }
                }
                Ok(Frame::Idle) => {
                    if self.shutdown.is_set() {
                        return;
                    }
                }
                Ok(Frame::Eof) | Err(_) => return,
            }
        }
    }
}

/// A blocking client for the wire protocol: send one request document,
/// receive one response document, in order, over a persistent
/// connection.
pub struct ServiceClient {
    stream: TcpStream,
}

impl ServiceClient {
    /// Connect to a serving endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ServiceClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServiceClient { stream })
    }

    /// Send `request` (a JSON document) and block for the response
    /// text. Responses arrive strictly in request order.
    pub fn call_raw(&mut self, request: &str) -> std::io::Result<String> {
        wire::write_frame(&mut self.stream, request)?;
        match wire::read_frame(&mut self.stream)? {
            Frame::Message(text) => Ok(text),
            Frame::Eof => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            // No read timeout is set on the client socket, so Idle
            // cannot occur; treat it as a torn read if it somehow does.
            Frame::Idle => Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "timed out waiting for response",
            )),
        }
    }

    /// [`ServiceClient::call_raw`] plus JSON parsing of the response.
    pub fn call(&mut self, request: &str) -> Result<crate::json::Json, crate::error::PdmError> {
        let text = self.call_raw(request)?;
        crate::json::parse(&text)
            .map_err(|e| crate::error::PdmError::Protocol(format!("bad response JSON: {e}")))
    }

    /// Ask the server for its metrics page (the `metrics` op).
    pub fn metrics_text(&mut self) -> Result<String, crate::error::PdmError> {
        let body = self.call(r#"{"op":"metrics"}"#)?;
        body.get_str("text")
            .map(str::to_string)
            .ok_or_else(|| crate::error::PdmError::Protocol("metrics response lacked text".into()))
    }

    /// Tell the server to shut down. The server confirms, then stops
    /// accepting and drains.
    pub fn shutdown(&mut self) -> Result<(), crate::error::PdmError> {
        self.call(r#"{"op":"shutdown"}"#).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_server(
        workers: usize,
    ) -> (
        std::net::SocketAddr,
        Arc<ShutdownFlag>,
        std::thread::JoinHandle<()>,
    ) {
        let session = Arc::new(Session::builder().cache_capacity(4, 16).threads(1).build());
        let server = PlanServer::bind("127.0.0.1:0", session, workers).unwrap();
        let addr = server.local_addr().unwrap();
        let flag = server.shutdown_handle();
        let handle = std::thread::spawn(move || {
            server.serve().unwrap();
        });
        (addr, flag, handle)
    }

    #[test]
    fn serves_plan_and_run_over_tcp() {
        let (addr, _flag, handle) = start_server(2);
        let mut client = ServiceClient::connect(addr).unwrap();

        let resp = client
            .call(
                r#"{"op":"plan","source":"for i = 1..=N { A[i + 3] = A[i] + 1; }","params":["N"]}"#,
            )
            .unwrap();
        assert_eq!(resp.get("ok"), Some(&crate::json::Json::Bool(true)));
        let hash = resp.get_str("shape_hash").unwrap().to_string();

        let resp = client
            .call(&format!(
                r#"{{"op":"run","shape_hash":"{hash}","values":{{"N":12}},"seed":3}}"#
            ))
            .unwrap();
        assert_eq!(resp.get_num("iterations"), Some(12.0));

        let text = client.metrics_text().unwrap();
        assert!(text.contains("pdm_connections_total 1"));
        assert!(text.contains("pdm_requests_total{op=\"plan\"} 1"));

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_flag_stops_an_idle_server() {
        let (addr, flag, handle) = start_server(2);
        // Prove it is alive, then stop it externally.
        let mut client = ServiceClient::connect(addr).unwrap();
        client.call(r#"{"op":"stats"}"#).unwrap();
        flag.set();
        handle.join().unwrap();
    }
}
