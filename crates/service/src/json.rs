//! A minimal JSON reader/writer — wire framing for the service and the
//! reader behind the committed `BENCH_*.json` snapshots.
//!
//! The workspace vendors no serde; the wire protocol and the regression
//! gate only need small documents with flat numeric/string fields, so a
//! small recursive-descent parser plus a direct serializer suffice. The
//! parser accepts standard JSON (objects, arrays, strings with the
//! common escapes, numbers, booleans, null) and rejects everything else
//! with a position-tagged error; [`render`] emits compact standard JSON
//! that [`parse`] round-trips.
//!
//! (This module lived in `pdm-bench` first; it moved here so the
//! service crate — which the bench crate drives — can use it for
//! framing without a dependency cycle. `pdm_bench::json` re-exports
//! it.)

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A number (all JSON numbers are read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key–value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value of `key`, if the key exists and is a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The numeric value of `key`, if the key exists and is a number.
    pub fn get_num(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Json::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// Flatten every numeric leaf into `(path, value)` pairs. Object
    /// members extend the path with their key; array elements use the
    /// element's `"name"` field when it has one (the bench case shape),
    /// else the index. Example: `cases.paper41_n200.seq_speedup`.
    pub fn metrics(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        self.walk(String::new(), &mut out);
        out
    }

    fn walk(&self, path: String, out: &mut Vec<(String, f64)>) {
        let join = |p: &str, seg: &str| {
            if p.is_empty() {
                seg.to_string()
            } else {
                format!("{p}.{seg}")
            }
        };
        match self {
            Json::Num(n) => out.push((path, *n)),
            Json::Obj(fields) => {
                for (k, v) in fields {
                    v.walk(join(&path, k), out);
                }
            }
            Json::Arr(items) => {
                for (i, item) in items.iter().enumerate() {
                    let seg = match item.get("name") {
                        Some(Json::Str(s)) => s.clone(),
                        _ => i.to_string(),
                    };
                    item.walk(join(&path, &seg), out);
                }
            }
            _ => {}
        }
    }
}

/// Serialize a [`Json`] value to compact standard JSON. Numbers emit
/// through Rust's shortest-round-trip `f64` formatting (integral values
/// print without a fractional part); strings escape quotes, backslashes,
/// and control characters. [`parse`] reads the output back identically.
pub fn render(v: &Json) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Null => out.push_str("null"),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. The entire input (modulo trailing whitespace)
/// must be consumed.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Json::Str(string(b, pos)?)),
        Some(b't') => keyword(b, pos, "true", Json::Bool(true)),
        Some(b'f') => keyword(b, pos, "false", Json::Bool(false)),
        Some(b'n') => keyword(b, pos, "null", Json::Null),
        Some(_) => number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn keyword(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = string(b, pos)?;
        expect(b, pos, b':')?;
        fields.push((key, value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    // Accumulate raw bytes (preserves multibyte UTF-8 sequences) and
    // validate once at the closing quote.
    let mut out: Vec<u8> = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into());
            }
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' | b'\\' | b'/' => out.push(esc),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(String::from)?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        let ch = char::from_u32(code).unwrap_or('\u{fffd}');
                        out.extend_from_slice(ch.encode_utf8(&mut [0u8; 4]).as_bytes());
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            _ => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bench_shape() {
        let text = r#"{
          "bench": "compiled_vs_interp",
          "threads": 8,
          "cases": [
            {"name": "a", "seq_speedup": 4.25, "ok": true},
            {"name": "b", "seq_speedup": 1.5, "extra": null}
          ]
        }"#;
        let v = parse(text).unwrap();
        let m = v.metrics();
        assert!(m.contains(&("threads".to_string(), 8.0)));
        assert!(m.contains(&("cases.a.seq_speedup".to_string(), 4.25)));
        assert!(m.contains(&("cases.b.seq_speedup".to_string(), 1.5)));
    }

    #[test]
    fn arrays_without_names_use_indices() {
        let v = parse(r#"{"xs": [1, 2.5, -3e2]}"#).unwrap();
        let m = v.metrics();
        assert_eq!(
            m,
            vec![
                ("xs.0".to_string(), 1.0),
                ("xs.1".to_string(), 2.5),
                ("xs.2".to_string(), -300.0)
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        let v = parse(r#"{"s": "a\nb\"cA"}"#).unwrap();
        assert_eq!(v.get("s"), Some(&Json::Str("a\nb\"cA".to_string())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a": nope}"#).is_err());
    }

    #[test]
    fn render_round_trips() {
        let v = Json::Obj(vec![
            ("op".into(), Json::Str("plan".into())),
            ("n".into(), Json::Num(64.0)),
            ("ratio".into(), Json::Num(1.5)),
            ("weird".into(), Json::Str("a\"b\\c\nd\u{1}".into())),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "xs".into(),
                Json::Arr(vec![Json::Num(-3.0), Json::Str("s".into())]),
            ),
        ]);
        let text = render(&v);
        assert_eq!(parse(&text).unwrap(), v);
        // Integral numbers print without a fractional part.
        assert!(text.contains("\"n\":64,"), "{text}");
        assert!(text.contains("\"ratio\":1.5"), "{text}");
    }

    #[test]
    fn accessors_pick_typed_fields() {
        let v = parse(r#"{"op": "run", "seed": 7}"#).unwrap();
        assert_eq!(v.get_str("op"), Some("run"));
        assert_eq!(v.get_num("seed"), Some(7.0));
        assert_eq!(v.get_str("seed"), None);
        assert_eq!(v.get_num("missing"), None);
    }
}
