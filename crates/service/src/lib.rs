//! # pdm-service — the plan-serving layer behind the [`Session`] API
//!
//! Planning a loop nest (dependence analysis, uniformization, wavefront
//! partitioning) costs far more than instantiating or running the
//! resulting template. This crate turns the pipeline into a long-running
//! *service*: a process plans each nest **shape** once, caches the
//! symbolic [`PlanTemplate`](pdm_core::template::PlanTemplate) in a
//! sharded single-flight cache, and serves instantiations and runs to
//! many clients at memory speed.
//!
//! Two entry points:
//!
//! * **In-process:** [`Session`] — the unified front end. One object,
//!   one error type ([`PdmError`]), `&self` everywhere, safe to share
//!   across threads.
//!
//!   ```
//!   use pdm_service::Session;
//!
//!   let session = Session::new();
//!   let shape = session
//!       .parse_symbolic("for i = 1..=N { A[i + 2] = A[i] + 1; }", &["N"])
//!       .unwrap();
//!   let outcome = session.run(&shape, &[("N", 50)], 1).unwrap();
//!   assert_eq!(outcome.iterations, 50);
//!   ```
//!
//! * **Over TCP:** [`PlanServer`] / [`ServiceClient`] — the same
//!   session fronted by a socket, with per-operation metrics and a
//!   Prometheus-style `/metrics` page.
//!
//! ## Wire protocol
//!
//! Transport: TCP. Every message — request or response — is one
//! **frame**: a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON (max [`wire::MAX_FRAME`] = 16 MiB). A client
//! sends one request frame and reads one response frame; responses come
//! back in request order on each connection. Malformed requests produce
//! `{"ok": false}` responses, never a dropped connection.
//!
//! The frame limit is enforced in **both** directions without tearing
//! the stream: [`ServiceClient::call`] refuses an oversized request
//! with a typed `protocol` error before any byte hits the socket (the
//! connection stays usable), and a handler whose response body would
//! exceed the limit has that body replaced by an in-band
//! `{"ok": false, "kind": "protocol"}` frame rather than a torn or
//! half-written frame.
//!
//! Requests are objects with an `"op"` field. A nest shape is named
//! either by `"source"` (DSL text, with `"params"` listing the names
//! left symbolic) or by `"shape_hash"` — the structural hash of a shape
//! this server already planned, as a `"0x"`-prefixed 16-digit hex
//! string (JSON numbers are doubles and cannot carry 64 bits).
//!
//! | op | request fields | response fields |
//! |----|----------------|-----------------|
//! | `plan` | `source` + `params`, or `shape_hash` | `shape_hash`, `depth`, `doall`, `partitions`, `params` |
//! | `instantiate` | shape + `values` (`{"N": 64}`) | plan fields + `groups` |
//! | `run` | shape + `values`, optional `seed` | plan fields + `iterations`, `checksum`, `observed_threads`, `observed_steals`, and — for inspected (parametric-subscript) shapes — `verdict` plus `interval_hit` (true when the verdict came from a certified stability interval instead of an audit) |
//! | `stats` | — | `cache` (counters), `shards` (per-shard), `requests_total`, `template_acquire_mean_us` |
//! | `metrics` | — | `text`: the Prometheus-style exposition page |
//! | `shutdown` | — | confirms, then the server drains and exits |
//!
//! Any request may additionally carry `"deadline_ms"` (non-negative
//! integer): a cooperative budget for that one request, honored by
//! **every** op — `plan` and `instantiate` check it around template
//! resolution and lowering exactly as `run` checks it around planning,
//! inspection, memory initialization, and each execution stage. The
//! server checks the budget **between** pipeline stages (never
//! preemptively — a stage already running completes), and abandons
//! remaining work with a `deadline_exceeded` failure once it has
//! passed.
//!
//! Every response carries `"ok"` (bool) and `"op"` (echo); failures add
//! `"kind"` and `"error"` (message). The kinds:
//!
//! | kind | meaning | retry? |
//! |------|---------|--------|
//! | `parse`, `plan`, `runtime`, `protocol` | the request itself is at fault | no — fix the request |
//! | `unknown_shape` | hash never planned here, or evicted | no — resubmit the `source` |
//! | `overloaded` | connection shed at the [`RuntimeConfig`](pdm_runtime::RuntimeConfig) `max_connections` cap | yes, after backoff |
//! | `deadline_exceeded` | the request's `deadline_ms` budget ran out | yes, with a larger budget |
//! | `planning_failed` | the planning run for this shape panicked; the flight is cleared | yes — the retry re-plans |
//! | `timeout`, `io` | transport-level failure (client-side kinds) | yes, usually on a fresh connection |
//!
//! Retry semantics: `plan`/`instantiate`/`stats`/`metrics` are
//! idempotent, and `run` is deterministic for a given `seed`, so
//! retrying any of them is always safe.
//! [`ServiceClient::call_retrying`] implements the recommended policy —
//! capped exponential backoff (25 ms doubling to 1 s), reconnecting on
//! transport errors, retrying the retryable kinds above and surfacing
//! everything else immediately.
//!
//! Example exchange (frame lengths omitted):
//!
//! ```text
//! → {"op":"plan","source":"for i = 1..=N { A[i+2] = A[i] + 1; }","params":["N"]}
//! ← {"ok":true,"op":"plan","shape_hash":"0x5b2d...","depth":1,...}
//! → {"op":"run","shape_hash":"0x5b2d...","values":{"N":100},"seed":7}
//! ← {"ok":true,"op":"run","iterations":100,"checksum":4950,...}
//! ```
//!
//! ## Concurrency model
//!
//! The server runs entirely inside one work-stealing region of the
//! vendored pool ([`rayon::scope_with`]): the accept loop is a spawned
//! job, and each connection becomes another job that idle workers
//! steal. Template planning is deduplicated by the session's
//! [`ShardedPlanCache`](pdm_runtime::ShardedPlanCache): when several
//! connections request an unplanned shape at once, exactly one plans
//! and the rest block on a condvar and share the leader's `Arc`.
//!
//! ## Hardening
//!
//! The serving path is built to degrade, not die:
//!
//! * **Panic isolation** — every connection job and planning run is
//!   unwind-caught; a panic kills one request, increments
//!   `pdm_panics_total`, and poisons nothing. A panicked single-flight
//!   leader wakes its followers with `planning_failed` and clears the
//!   flight so the next request re-plans.
//! * **Backpressure** — beyond `max_connections`
//!   (`PDM_MAX_CONNECTIONS`, default 64) new connections are shed with
//!   one in-band `overloaded` frame (counted in `pdm_shed_total`)
//!   instead of queueing without bound.
//! * **Timeouts** — clients never hang: reads time out
//!   (`PDM_CLIENT_READ_TIMEOUT_MS`, default 10 000, overridable per
//!   client via [`ClientBuilder`]), and both sides abandon peers that
//!   stall mid-frame. Sessions fall back to checked sequential
//!   execution when a parallel run fails
//!   (`pdm_fallback_runs_total` / `pdm_fallback_successes_total`).
//! * **Fault injection** — the [`faults`] module plants probes on the
//!   serving path (leader panics, handler panics, torn frames, delayed
//!   reads, dropped sockets), armed via `PDM_FAULTS`
//!   (`"probe:probability[:limit],…"`, seeded by `PDM_PROPTEST_SEED`)
//!   or per-session through [`SessionBuilder::faults`]. Disarmed
//!   probes cost one relaxed atomic load; the `BENCH_faults.json` gate
//!   holds the armed-at-zero overhead under 5%.
//!
//! ## Inspection and the verdict cache
//!
//! Parametric-subscript shapes are audited per valuation and the
//! verdict cached in a bounded, sharded
//! [`VerdictCache`](pdm_runtime::sharded::VerdictCache) (LRU per
//! shard; capacity via `PDM_VERDICT_CAPACITY` or
//! [`SessionBuilder::verdict_capacity`]). When the audited access
//! geometry admits it, the session also derives a **stability
//! interval** — a box of valuations on which the verdict provably
//! holds — and caches it ahead of the point entries, so in-interval
//! valuations skip the audit entirely. The `/metrics` page exposes
//! `pdm_inspector_{certified,refined,rejected}_total`,
//! `pdm_inspector_interval_hits_total`, audit latency, and
//! `pdm_verdict_cache_{hits,interval_hits,misses,evictions}_total`
//! with the `pdm_verdict_cache_{entries,intervals}` gauges.
//!
//! This crate also owns the dependency-free [`json`] module (parser +
//! serializer) used for both wire frames and bench snapshots —
//! `pdm_bench::json` re-exports it.

pub mod error;
pub mod faults;
pub mod json;
pub mod metrics;
pub mod server;
pub mod session;
pub mod wire;

pub use error::PdmError;
pub use faults::Faults;
pub use metrics::{LatencyHistogram, OpMetrics, ServiceMetrics};
pub use server::{ClientBuilder, PlanServer, ServiceClient};
pub use session::{Deadline, RunOutcome, Session, SessionBuilder};
