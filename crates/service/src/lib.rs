//! # pdm-service — the plan-serving layer behind the [`Session`] API
//!
//! Planning a loop nest (dependence analysis, uniformization, wavefront
//! partitioning) costs far more than instantiating or running the
//! resulting template. This crate turns the pipeline into a long-running
//! *service*: a process plans each nest **shape** once, caches the
//! symbolic [`PlanTemplate`](pdm_core::template::PlanTemplate) in a
//! sharded single-flight cache, and serves instantiations and runs to
//! many clients at memory speed.
//!
//! Two entry points:
//!
//! * **In-process:** [`Session`] — the unified front end. One object,
//!   one error type ([`PdmError`]), `&self` everywhere, safe to share
//!   across threads.
//!
//!   ```
//!   use pdm_service::Session;
//!
//!   let session = Session::new();
//!   let shape = session
//!       .parse_symbolic("for i = 1..=N { A[i + 2] = A[i] + 1; }", &["N"])
//!       .unwrap();
//!   let outcome = session.run(&shape, &[("N", 50)], 1).unwrap();
//!   assert_eq!(outcome.iterations, 50);
//!   ```
//!
//! * **Over TCP:** [`PlanServer`] / [`ServiceClient`] — the same
//!   session fronted by a socket, with per-operation metrics and a
//!   Prometheus-style `/metrics` page.
//!
//! ## Wire protocol
//!
//! Transport: TCP. Every message — request or response — is one
//! **frame**: a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON (max [`wire::MAX_FRAME`] = 16 MiB). A client
//! sends one request frame and reads one response frame; responses come
//! back in request order on each connection. Malformed requests produce
//! `{"ok": false}` responses, never a dropped connection.
//!
//! Requests are objects with an `"op"` field. A nest shape is named
//! either by `"source"` (DSL text, with `"params"` listing the names
//! left symbolic) or by `"shape_hash"` — the structural hash of a shape
//! this server already planned, as a `"0x"`-prefixed 16-digit hex
//! string (JSON numbers are doubles and cannot carry 64 bits).
//!
//! | op | request fields | response fields |
//! |----|----------------|-----------------|
//! | `plan` | `source` + `params`, or `shape_hash` | `shape_hash`, `depth`, `doall`, `partitions`, `params` |
//! | `instantiate` | shape + `values` (`{"N": 64}`) | plan fields + `groups` |
//! | `run` | shape + `values`, optional `seed` | plan fields + `iterations`, `checksum`, `observed_threads`, `observed_steals` |
//! | `stats` | — | `cache` (counters), `shards` (per-shard), `requests_total`, `template_acquire_mean_us` |
//! | `metrics` | — | `text`: the Prometheus-style exposition page |
//! | `shutdown` | — | confirms, then the server drains and exits |
//!
//! Every response carries `"ok"` (bool) and `"op"` (echo); failures add
//! `"kind"` (one of `parse`, `plan`, `runtime`, `unknown_shape`,
//! `protocol`, `io`) and `"error"` (message). `unknown_shape` means the
//! hash was never planned here or was evicted — resubmit the source.
//!
//! Example exchange (frame lengths omitted):
//!
//! ```text
//! → {"op":"plan","source":"for i = 1..=N { A[i+2] = A[i] + 1; }","params":["N"]}
//! ← {"ok":true,"op":"plan","shape_hash":"0x5b2d...","depth":1,...}
//! → {"op":"run","shape_hash":"0x5b2d...","values":{"N":100},"seed":7}
//! ← {"ok":true,"op":"run","iterations":100,"checksum":4950,...}
//! ```
//!
//! ## Concurrency model
//!
//! The server runs entirely inside one work-stealing region of the
//! vendored pool ([`rayon::scope_with`]): the accept loop is a spawned
//! job, and each connection becomes another job that idle workers
//! steal. Template planning is deduplicated by the session's
//! [`ShardedPlanCache`](pdm_runtime::ShardedPlanCache): when several
//! connections request an unplanned shape at once, exactly one plans
//! and the rest block on a condvar and share the leader's `Arc`.
//!
//! This crate also owns the dependency-free [`json`] module (parser +
//! serializer) used for both wire frames and bench snapshots —
//! `pdm_bench::json` re-exports it.

pub mod error;
pub mod json;
pub mod metrics;
pub mod server;
pub mod session;
pub mod wire;

pub use error::PdmError;
pub use metrics::{LatencyHistogram, OpMetrics, ServiceMetrics};
pub use server::{PlanServer, ServiceClient};
pub use session::{RunOutcome, Session, SessionBuilder};
