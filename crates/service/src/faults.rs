//! Fault injection for hardening tests: named probe points that fire
//! deterministically-seeded random faults.
//!
//! The service sprinkles **probes** at the places things break in
//! production — the single-flight planning leader, the connection
//! handler, the response writer, the socket itself. A [`Faults`] value
//! decides, per probe, whether this particular arrival *fires* (panics,
//! tears a frame, drops a socket, delays a read — the call site picks
//! the failure, this module picks the moment).
//!
//! Probes are **off by default** and cost one atomic load when
//! disarmed. They are armed through the `PDM_FAULTS` environment knob
//! (read once into [`pdm_runtime::RuntimeConfig`]) or programmatically
//! via [`crate::SessionBuilder::faults`] — the latter is what the
//! integration tests use so parallel test binaries never race on global
//! state.
//!
//! Spec grammar (comma-separated):
//!
//! ```text
//! PDM_FAULTS="plan.leader:0.5,server.handler:0.1:25,wire.torn:1"
//!             └ probe ┘ └prob┘ └ probe      ┘ prob └limit┘
//! ```
//!
//! Each clause is `probe:probability[:limit]` — `probability ∈ [0,1]`
//! is the chance an arrival fires, the optional `limit` caps total
//! fires (after which the probe disarms itself). Draws come from a
//! per-probe splitmix64 stream seeded from `PDM_PROPTEST_SEED`, so a
//! pinned seed replays the exact same fault schedule.

use std::sync::atomic::{AtomicU64, Ordering};

/// Probe: the single-flight leader's planning run (fires = leader
/// panics mid-plan, exercising the tri-state flight recovery).
pub const PLAN_LEADER: &str = "plan.leader";
/// Probe: the connection handler, after a request frame is read
/// (fires = handler job panics, exercising pool panic isolation).
pub const SERVER_HANDLER: &str = "server.handler";
/// Probe: the response writer (fires = the frame is torn — header
/// promises more bytes than are sent — and the socket closes).
pub const WIRE_TORN: &str = "wire.torn";
/// Probe: request dispatch (fires = the handler stalls briefly before
/// answering, exercising client read timeouts under load).
pub const WIRE_DELAY: &str = "wire.delay";
/// Probe: the socket after a request is read (fires = the connection
/// drops with no response at all).
pub const NET_DROP: &str = "net.drop";

/// Every probe name this build knows. Unknown names in a spec are
/// rejected so typos fail loudly instead of silently never firing.
pub const ALL_PROBES: &[&str] = &[PLAN_LEADER, SERVER_HANDLER, WIRE_TORN, WIRE_DELAY, NET_DROP];

/// One armed probe point.
#[derive(Debug)]
struct Probe {
    name: String,
    /// Fire threshold scaled to u64: an arrival fires when the next
    /// splitmix64 draw is below this.
    threshold: u64,
    /// Max fires before the probe disarms (`u64::MAX` = unlimited).
    limit: u64,
    /// Per-probe RNG state (splitmix64).
    rng: AtomicU64,
    fired: AtomicU64,
    arrivals: AtomicU64,
}

/// A set of armed fault probes, shareable across the server's worker
/// threads. `fire` is lock-free; a disarmed set answers with a single
/// atomic load of nothing at all (empty probe list).
#[derive(Debug, Default)]
pub struct Faults {
    probes: Vec<Probe>,
}

impl Faults {
    /// No probes armed — every `fire` answers `false`. This is the
    /// default for every session unless `PDM_FAULTS` is set.
    pub fn disabled() -> Faults {
        Faults::default()
    }

    /// Arm probes from the process environment:
    /// [`pdm_runtime::RuntimeConfig::global`]'s `faults` spec, seeded
    /// from its `proptest_seed`. Disabled when `PDM_FAULTS` is unset.
    /// An invalid spec panics — a fault harness that silently fails to
    /// arm would vacuously pass every hardening test.
    pub fn from_env() -> Faults {
        let config = pdm_runtime::RuntimeConfig::global();
        match &config.faults {
            None => Faults::disabled(),
            Some(spec) => Faults::parse(spec, config.proptest_seed.unwrap_or(0))
                .unwrap_or_else(|e| panic!("invalid PDM_FAULTS spec: {e}")),
        }
    }

    /// Parse a spec string (see module docs for the grammar), seeding
    /// each probe's RNG stream from `seed` and its name.
    pub fn parse(spec: &str, seed: u64) -> Result<Faults, String> {
        let mut probes = Vec::new();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let mut parts = clause.split(':');
            let name = parts.next().unwrap_or("").trim();
            if !ALL_PROBES.contains(&name) {
                return Err(format!(
                    "unknown probe {name:?} (known: {})",
                    ALL_PROBES.join(", ")
                ));
            }
            let prob: f64 = parts
                .next()
                .ok_or_else(|| format!("probe {name:?} missing probability"))?
                .trim()
                .parse()
                .map_err(|_| format!("probe {name:?}: probability is not a number"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("probe {name:?}: probability {prob} not in [0,1]"));
            }
            let limit = match parts.next() {
                None => u64::MAX,
                Some(raw) => raw
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("probe {name:?}: limit is not an integer"))?,
            };
            if parts.next().is_some() {
                return Err(format!("probe {name:?}: too many fields"));
            }
            // Threshold on the full u64 range; prob==1.0 must always
            // fire, so saturate instead of wrapping to 0.
            let threshold = if prob >= 1.0 {
                u64::MAX
            } else {
                (prob * (u64::MAX as f64)) as u64
            };
            probes.push(Probe {
                name: name.to_string(),
                threshold,
                limit,
                rng: AtomicU64::new(seed ^ fnv1a(name)),
                fired: AtomicU64::new(0),
                arrivals: AtomicU64::new(0),
            });
        }
        Ok(Faults { probes })
    }

    /// Whether any probe is armed at all (used to skip per-request
    /// bookkeeping entirely on the fault-free fast path).
    pub fn armed(&self) -> bool {
        !self.probes.is_empty()
    }

    /// Consult probe `name`: returns `true` when this arrival should
    /// fault. Unarmed probes (or unknown names) never fire.
    pub fn fire(&self, name: &str) -> bool {
        let Some(p) = self.probes.iter().find(|p| p.name == name) else {
            return false;
        };
        p.arrivals.fetch_add(1, Ordering::Relaxed);
        if p.threshold == u64::MAX {
            // Always-fire fast path (still honors the limit below).
        } else {
            let draw = splitmix64(&p.rng);
            if draw >= p.threshold {
                return false;
            }
        }
        // Honor the fire limit: claim a slot atomically so concurrent
        // arrivals can't overshoot it.
        let prev = p.fired.fetch_add(1, Ordering::Relaxed);
        if prev >= p.limit {
            p.fired.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Consult probe `name` and panic (with a recognizable payload) if
    /// it fires — the injection shape for `plan.leader` and
    /// `server.handler`.
    pub fn panic_if(&self, name: &str) {
        if self.fire(name) {
            panic!("injected fault: {name}");
        }
    }

    /// Times probe `name` has fired so far.
    pub fn fired(&self, name: &str) -> u64 {
        self.probes
            .iter()
            .find(|p| p.name == name)
            .map_or(0, |p| p.fired.load(Ordering::Relaxed))
    }

    /// Times probe `name` has been consulted (fired or not).
    pub fn arrivals(&self, name: &str) -> u64 {
        self.probes
            .iter()
            .find(|p| p.name == name)
            .map_or(0, |p| p.arrivals.load(Ordering::Relaxed))
    }
}

/// Advance a splitmix64 stream held in an atomic (race on the state
/// word only loses draws, never duplicates the same fault decision on
/// one arrival).
fn splitmix64(state: &AtomicU64) -> u64 {
    let s = state
        .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a probe name — decorrelates per-probe RNG streams that
/// share one seed.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let f = Faults::disabled();
        assert!(!f.armed());
        for _ in 0..100 {
            assert!(!f.fire(PLAN_LEADER));
        }
        f.panic_if(SERVER_HANDLER); // must not panic
    }

    #[test]
    fn always_fire_honors_limit() {
        let f = Faults::parse("server.handler:1:3", 7).unwrap();
        let fires = (0..10).filter(|_| f.fire(SERVER_HANDLER)).count();
        assert_eq!(fires, 3);
        assert_eq!(f.fired(SERVER_HANDLER), 3);
        assert_eq!(f.arrivals(SERVER_HANDLER), 10);
    }

    #[test]
    fn probability_zero_never_fires_and_one_always_does() {
        let f = Faults::parse("wire.torn:0,net.drop:1", 42).unwrap();
        for _ in 0..200 {
            assert!(!f.fire(WIRE_TORN));
            assert!(f.fire(NET_DROP));
        }
    }

    #[test]
    fn seeded_draws_replay() {
        let a = Faults::parse("wire.delay:0.5", 1).unwrap();
        let b = Faults::parse("wire.delay:0.5", 1).unwrap();
        let draws_a: Vec<bool> = (0..64).map(|_| a.fire(WIRE_DELAY)).collect();
        let draws_b: Vec<bool> = (0..64).map(|_| b.fire(WIRE_DELAY)).collect();
        assert_eq!(draws_a, draws_b);
        // Roughly half fire (loose bound; the stream is deterministic
        // so this cannot flake).
        let fires = draws_a.iter().filter(|&&x| x).count();
        assert!((16..=48).contains(&fires), "{fires} fires of 64");
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(Faults::parse("no.such.probe:1", 0).is_err());
        assert!(Faults::parse("plan.leader", 0).is_err());
        assert!(Faults::parse("plan.leader:2.0", 0).is_err());
        assert!(Faults::parse("plan.leader:0.5:x", 0).is_err());
        assert!(Faults::parse("plan.leader:0.5:1:9", 0).is_err());
        // Empty clauses are tolerated (trailing commas).
        let f = Faults::parse("plan.leader:1,", 0).unwrap();
        assert!(f.armed());
    }

    #[test]
    fn injected_panic_payload_names_the_probe() {
        let f = Faults::parse("plan.leader:1", 0).unwrap();
        let err = std::panic::catch_unwind(|| f.panic_if(PLAN_LEADER)).unwrap_err();
        assert!(rayon::panic_message(&*err).contains("injected fault: plan.leader"));
    }
}
