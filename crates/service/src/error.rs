//! [`PdmError`] — the one error type the service surface speaks.
//!
//! The underlying crates each have their own error enum (`IrError`,
//! `CoreError`, `RuntimeError`); a caller driving the whole pipeline
//! through [`crate::Session`] previously had to juggle all three plus
//! `io::Error` at the wire. `PdmError` wraps them with `From` impls so
//! `?` composes across every layer, and adds the two service-level
//! failure modes (unknown shape hash, protocol violation).

use pdm_core::CoreError;
use pdm_loopir::IrError;
use pdm_runtime::RuntimeError;

/// Any failure the service surface can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdmError {
    /// DSL source failed to parse or validate.
    Parse(IrError),
    /// Analysis / transformation / planning failed.
    Plan(CoreError),
    /// Instantiation or execution failed.
    Runtime(RuntimeError),
    /// A by-hash request named a shape this process has not cached
    /// (never planned, or already evicted) — resubmit the source.
    UnknownShape(u64),
    /// A malformed wire request (bad frame, bad JSON, missing fields).
    Protocol(String),
    /// Socket-level failure (stringified — `std::io::Error` is neither
    /// `Clone` nor `PartialEq`).
    Io(String),
    /// The single-flight planning run for this shape died (leader
    /// panic) before publishing a result. Transient: the in-flight
    /// entry was cleared, so retrying the request re-plans.
    PlanningFailed(String),
    /// The request's cooperative `deadline_ms` budget expired between
    /// pipeline stages; partial work was abandoned.
    DeadlineExceeded,
    /// The server is at its connection cap and shed this connection
    /// instead of queuing it. Back off and reconnect.
    Overloaded,
    /// A client-side read deadline expired while waiting for a
    /// response (stalled or unreachable server).
    Timeout(String),
}

impl std::fmt::Display for PdmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PdmError::Parse(e) => write!(f, "parse error: {e}"),
            PdmError::Plan(e) => write!(f, "planning error: {e}"),
            PdmError::Runtime(e) => write!(f, "runtime error: {e}"),
            PdmError::UnknownShape(h) => {
                write!(f, "unknown shape hash {h:#018x} (resubmit the source)")
            }
            PdmError::Protocol(m) => write!(f, "protocol error: {m}"),
            PdmError::Io(m) => write!(f, "io error: {m}"),
            PdmError::PlanningFailed(m) => {
                write!(f, "planning failed: {m} (retry the request)")
            }
            PdmError::DeadlineExceeded => {
                write!(f, "deadline exceeded: request budget expired mid-pipeline")
            }
            PdmError::Overloaded => {
                write!(f, "server overloaded: connection shed, back off and retry")
            }
            PdmError::Timeout(m) => write!(f, "client timeout: {m}"),
        }
    }
}

impl std::error::Error for PdmError {}

impl From<IrError> for PdmError {
    fn from(e: IrError) -> Self {
        PdmError::Parse(e)
    }
}

impl From<CoreError> for PdmError {
    fn from(e: CoreError) -> Self {
        PdmError::Plan(e)
    }
}

impl From<RuntimeError> for PdmError {
    fn from(e: RuntimeError) -> Self {
        match e {
            // A torn single-flight run is transient (the inflight entry
            // was cleared); surface it under its own retryable kind
            // rather than the generic "runtime" bucket.
            RuntimeError::PlanningFailed(m) => PdmError::PlanningFailed(m),
            other => PdmError::Runtime(other),
        }
    }
}

impl From<std::io::Error> for PdmError {
    fn from(e: std::io::Error) -> Self {
        PdmError::Io(e.to_string())
    }
}

impl PdmError {
    /// A short machine-readable kind tag for wire responses.
    pub fn kind(&self) -> &'static str {
        match self {
            PdmError::Parse(_) => "parse",
            PdmError::Plan(_) => "plan",
            PdmError::Runtime(_) => "runtime",
            PdmError::UnknownShape(_) => "unknown_shape",
            PdmError::Protocol(_) => "protocol",
            PdmError::Io(_) => "io",
            PdmError::PlanningFailed(_) => "planning_failed",
            PdmError::DeadlineExceeded => "deadline_exceeded",
            PdmError::Overloaded => "overloaded",
            PdmError::Timeout(_) => "timeout",
        }
    }
}

impl PdmError {
    /// Whether a retry of the *same* request can reasonably succeed
    /// without any change on the caller's side. Used by clients to
    /// decide between backing off and giving up.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PdmError::PlanningFailed(_)
                | PdmError::Overloaded
                | PdmError::Timeout(_)
                | PdmError::Io(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_layer() {
        let parse: PdmError = pdm_loopir::parse::parse_loop("for {").unwrap_err().into();
        assert_eq!(parse.kind(), "parse");
        assert!(parse.to_string().contains("parse error"));

        let unknown = PdmError::UnknownShape(0xabcd);
        assert_eq!(unknown.kind(), "unknown_shape");
        assert!(unknown.to_string().contains("0x000000000000abcd"));

        let io: PdmError = std::io::Error::other("boom").into();
        assert_eq!(io, PdmError::Io("boom".into()));
    }

    #[test]
    fn fault_kinds_are_typed_and_retryable() {
        let planning: PdmError = RuntimeError::PlanningFailed("leader panicked".into()).into();
        assert_eq!(planning.kind(), "planning_failed");
        assert!(planning.is_retryable());

        assert_eq!(PdmError::DeadlineExceeded.kind(), "deadline_exceeded");
        assert!(!PdmError::DeadlineExceeded.is_retryable());

        assert_eq!(PdmError::Overloaded.kind(), "overloaded");
        assert!(PdmError::Overloaded.is_retryable());

        assert_eq!(PdmError::Timeout("read stalled".into()).kind(), "timeout");

        // Non-transient runtime errors keep the generic kind.
        let oob: PdmError = RuntimeError::OutOfBounds {
            array: "A".into(),
            subscript: vec![9],
        }
        .into();
        assert_eq!(oob.kind(), "runtime");
    }
}
