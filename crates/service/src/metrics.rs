//! Service observability: lock-free latency histograms and the
//! `/metrics`-style text rendering.
//!
//! Everything here is plain atomics — recording a latency is two
//! `fetch_add`s, cheap enough to sit on every request path. The
//! [`render_metrics`] output follows the Prometheus exposition format
//! (`# TYPE` lines, `_bucket{le=...}` cumulative buckets) so standard
//! scrapers parse it, but the service does not pretend to be a full
//! Prometheus endpoint — it is a diagnostic text page served over the
//! same wire protocol as everything else.

use pdm_runtime::sharded::{CacheStats, ShardedPlanCache};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets: bucket `i` counts samples with
/// `latency_us < 2^i`, up to `2^(BUCKETS-2)` µs (≈ 8.4 s), with the last
/// bucket catching everything larger.
const BUCKETS: usize = 24;

/// A fixed-bucket log₂ latency histogram over microseconds.
///
/// Buckets are cumulative-friendly powers of two: sample `d` lands in
/// the first bucket whose upper bound `2^i` µs exceeds it. `record` is
/// two relaxed atomic adds; readers get counts, the sum (for averages),
/// and approximate quantiles from the bucket boundaries.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us() as f64 / n as f64
        }
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`) — an over-estimate by at most 2×, which is what
    /// log₂ buckets buy. Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return upper_bound_us(i);
            }
        }
        upper_bound_us(BUCKETS - 1)
    }

    /// Snapshot of `(upper_bound_us, cumulative_count)` per bucket, for
    /// rendering.
    fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut acc = 0u64;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                acc += b.load(Ordering::Relaxed);
                (upper_bound_us(i), acc)
            })
            .collect()
    }
}

/// Upper bound of bucket `i` in µs: `2^i` for i < BUCKETS-1 (bucket 0
/// holds sub-microsecond samples), unbounded (`u64::MAX`) for the last.
fn upper_bound_us(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Per-operation request counters plus a latency histogram.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Requests answered (including errors).
    pub requests: AtomicU64,
    /// Requests answered with an error.
    pub errors: AtomicU64,
    /// End-to-end handling latency.
    pub latency: LatencyHistogram,
}

impl OpMetrics {
    /// Record one handled request.
    pub fn record(&self, latency: Duration, ok: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency);
    }
}

/// All counters a serving process exposes: per-operation request
/// metrics plus template-acquisition latency (the session's `plan`
/// path, cache hits and planning runs alike).
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// `plan` requests (source → template facts).
    pub plan: OpMetrics,
    /// `instantiate` requests (template + values → instance facts).
    pub instantiate: OpMetrics,
    /// `run` requests (instantiate + execute).
    pub run: OpMetrics,
    /// `metrics` / `stats` / `shutdown` and unrecognized requests.
    pub control: OpMetrics,
    /// Latency of template acquisition inside the session (hits are
    /// sub-microsecond; leaders pay the planning run).
    pub template_acquire: LatencyHistogram,
    /// Connections accepted by the server.
    pub connections: AtomicU64,
    /// Connection-handler (and other pool-job) panics caught by the
    /// region sink instead of tearing down the server.
    pub panics: AtomicU64,
    /// Connections shed at the max-connections gate (answered with an
    /// in-band `overloaded` error, then closed).
    pub shed: AtomicU64,
    /// Requests abandoned mid-pipeline because their `deadline_ms`
    /// budget expired.
    pub deadline_exceeded: AtomicU64,
    /// Inspected runs whose verdict certified the speculative parallel
    /// plan as-is.
    pub inspector_certified: AtomicU64,
    /// Inspected runs demoted to a staged (refined) schedule.
    pub inspector_refined: AtomicU64,
    /// Inspected runs rejected back to sequential order.
    pub inspector_rejected: AtomicU64,
    /// Inspected runs answered by a certified valuation *interval* in
    /// the verdict cache — no audit ever ran for that valuation.
    pub inspector_interval_hits: AtomicU64,
    /// Latency of *fresh* inspector audits (verdict-cache hits skip the
    /// walk and are not recorded here).
    pub inspector_audit: LatencyHistogram,
    /// Parallel executions that fell back to the sequential checked
    /// path after a primary failure (graceful degradation).
    pub fallback_runs: AtomicU64,
    /// Fallback executions that then succeeded.
    pub fallback_successes: AtomicU64,
    /// Fatal acceptor errors (each one shuts the server down — this is
    /// effectively 0 or 1, kept as a counter for scrapers).
    pub accept_errors: AtomicU64,
    /// Connections being served right now (gauge; the max-connections
    /// gate compares against this).
    pub active_connections: AtomicU64,
}

impl ServiceMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics::default()
    }

    /// Total requests over every operation.
    pub fn total_requests(&self) -> u64 {
        [&self.plan, &self.instantiate, &self.run, &self.control]
            .iter()
            .map(|op| op.requests.load(Ordering::Relaxed))
            .sum()
    }
}

/// Render the full metrics page: cache counters (aggregate and
/// per-shard), verdict-cache counters (point/interval tiers and LRU
/// evictions), per-operation request counts and latency histograms,
/// and the runtime's live group gauges.
pub fn render_metrics(
    metrics: &ServiceMetrics,
    cache: &ShardedPlanCache,
    verdicts: &pdm_runtime::sharded::VerdictCache,
) -> String {
    let mut out = String::new();
    let total = cache.stats();
    push_counter(&mut out, "pdm_cache_hits_total", "cache hits", total.hits);
    push_counter(
        &mut out,
        "pdm_cache_planned_total",
        "planning runs led",
        total.planned,
    );
    push_counter(
        &mut out,
        "pdm_cache_waited_total",
        "requests that waited on an in-flight plan",
        total.waited,
    );
    push_counter(
        &mut out,
        "pdm_cache_evictions_total",
        "LRU evictions",
        total.evictions,
    );
    push_gauge(
        &mut out,
        "pdm_cache_entries",
        "templates currently cached",
        total.entries,
    );
    out.push_str("# TYPE pdm_cache_shard_requests_total counter\n");
    for (i, s) in cache.shard_stats().iter().enumerate() {
        out.push_str(&format!(
            "pdm_cache_shard_requests_total{{shard=\"{i}\"}} {}\n",
            s.requests()
        ));
    }

    let v = verdicts.stats();
    push_counter(
        &mut out,
        "pdm_verdict_cache_hits_total",
        "verdict point-entry hits",
        v.hits,
    );
    push_counter(
        &mut out,
        "pdm_verdict_cache_interval_hits_total",
        "verdict probes answered by a certified interval",
        v.interval_hits,
    );
    push_counter(
        &mut out,
        "pdm_verdict_cache_misses_total",
        "verdict probes answered by neither tier",
        v.misses,
    );
    push_counter(
        &mut out,
        "pdm_verdict_cache_evictions_total",
        "verdict entries evicted (point LRU + interval cap)",
        v.evictions,
    );
    push_gauge(
        &mut out,
        "pdm_verdict_cache_entries",
        "point verdicts currently cached",
        v.entries,
    );
    push_gauge(
        &mut out,
        "pdm_verdict_cache_intervals",
        "certified valuation intervals currently cached",
        v.intervals,
    );

    for (name, op) in [
        ("plan", &metrics.plan),
        ("instantiate", &metrics.instantiate),
        ("run", &metrics.run),
        ("control", &metrics.control),
    ] {
        out.push_str(&format!(
            "pdm_requests_total{{op=\"{name}\"}} {}\n",
            op.requests.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "pdm_request_errors_total{{op=\"{name}\"}} {}\n",
            op.errors.load(Ordering::Relaxed)
        ));
        push_histogram(
            &mut out,
            &format!("pdm_request_latency_us_{name}"),
            &op.latency,
        );
    }
    push_histogram(
        &mut out,
        "pdm_template_acquire_us",
        &metrics.template_acquire,
    );
    push_counter(
        &mut out,
        "pdm_connections_total",
        "connections accepted",
        metrics.connections.load(Ordering::Relaxed),
    );
    push_counter(
        &mut out,
        "pdm_panics_total",
        "pool-job panics caught by the region sink",
        metrics.panics.load(Ordering::Relaxed),
    );
    push_counter(
        &mut out,
        "pdm_shed_total",
        "connections shed at the max-connections gate",
        metrics.shed.load(Ordering::Relaxed),
    );
    push_counter(
        &mut out,
        "pdm_deadline_exceeded_total",
        "requests abandoned on an expired deadline budget",
        metrics.deadline_exceeded.load(Ordering::Relaxed),
    );
    push_counter(
        &mut out,
        "pdm_inspector_certified_total",
        "inspected runs whose speculative parallel plan was certified",
        metrics.inspector_certified.load(Ordering::Relaxed),
    );
    push_counter(
        &mut out,
        "pdm_inspector_refined_total",
        "inspected runs demoted to a staged schedule",
        metrics.inspector_refined.load(Ordering::Relaxed),
    );
    push_counter(
        &mut out,
        "pdm_inspector_rejected_total",
        "inspected runs rejected back to sequential order",
        metrics.inspector_rejected.load(Ordering::Relaxed),
    );
    push_counter(
        &mut out,
        "pdm_inspector_interval_hits_total",
        "inspected runs answered by a certified interval (audit skipped)",
        metrics.inspector_interval_hits.load(Ordering::Relaxed),
    );
    push_histogram(&mut out, "pdm_inspector_audit_us", &metrics.inspector_audit);
    push_counter(
        &mut out,
        "pdm_fallback_runs_total",
        "parallel runs degraded to the sequential checked path",
        metrics.fallback_runs.load(Ordering::Relaxed),
    );
    push_counter(
        &mut out,
        "pdm_fallback_successes_total",
        "degraded runs that then succeeded",
        metrics.fallback_successes.load(Ordering::Relaxed),
    );
    push_counter(
        &mut out,
        "pdm_accept_errors_total",
        "fatal acceptor errors (shut the server down)",
        metrics.accept_errors.load(Ordering::Relaxed),
    );
    push_gauge(
        &mut out,
        "pdm_active_connections",
        "connections being served right now",
        metrics.active_connections.load(Ordering::Relaxed),
    );

    // The runtime's live gauges: transient group structures alive right
    // now / at peak since the last reset (see pdm-runtime::schedule).
    push_gauge(
        &mut out,
        "pdm_live_groups",
        "group structures currently alive",
        pdm_runtime::schedule::live_groups().max(0) as u64,
    );
    push_gauge(
        &mut out,
        "pdm_peak_live_groups",
        "peak live group structures",
        pdm_runtime::schedule::peak_live_groups().max(0) as u64,
    );
    out
}

fn push_counter(out: &mut String, name: &str, help: &str, v: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
    ));
}

fn push_gauge(out: &mut String, name: &str, help: &str, v: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
    ));
}

fn push_histogram(out: &mut String, name: &str, h: &LatencyHistogram) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    for (le, cum) in h.cumulative() {
        let le = if le == u64::MAX {
            "+Inf".to_string()
        } else {
            le.to_string()
        };
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!(
        "{name}_sum {}\n{name}_count {}\n",
        h.sum_us(),
        h.count()
    ));
}

/// Make [`CacheStats`] addressable for the JSON `stats` op.
pub fn cache_stats_fields(s: &CacheStats) -> Vec<(String, crate::json::Json)> {
    use crate::json::Json;
    vec![
        ("hits".into(), Json::Num(s.hits as f64)),
        ("planned".into(), Json::Num(s.planned as f64)),
        ("waited".into(), Json::Num(s.waited as f64)),
        ("evictions".into(), Json::Num(s.evictions as f64)),
        ("entries".into(), Json::Num(s.entries as f64)),
        ("requests".into(), Json::Num(s.requests() as f64)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_us(), 101_106);
        // Median of {1,2,3,100,1000,100000} sits in the bucket covering 3µs.
        let med = h.quantile_us(0.5);
        assert!((3..=8).contains(&med), "median bucket bound {med}");
        // p99 lands in the top occupied bucket (100ms < 2^17 = 131072µs).
        assert_eq!(h.quantile_us(0.99), 131_072);
        assert!(h.mean_us() > 0.0);
    }

    #[test]
    fn renders_parseable_exposition_text() {
        let m = ServiceMetrics::new();
        m.plan.record(Duration::from_micros(250), true);
        m.run.record(Duration::from_micros(4000), false);
        let cache = ShardedPlanCache::new(2, 4);
        let verdicts = pdm_runtime::sharded::VerdictCache::new(2);
        let text = render_metrics(&m, &cache, &verdicts);
        assert!(text.contains("pdm_requests_total{op=\"plan\"} 1"));
        assert!(text.contains("pdm_request_errors_total{op=\"run\"} 1"));
        assert!(text.contains("pdm_cache_hits_total 0"));
        assert!(text.contains("le=\"+Inf\""));
        // Cumulative bucket counts end at the total count.
        assert!(text.contains("pdm_request_latency_us_plan_count 1"));
    }

    #[test]
    fn renders_hardening_counters() {
        let m = ServiceMetrics::new();
        m.panics.store(3, Ordering::Relaxed);
        m.shed.store(2, Ordering::Relaxed);
        m.deadline_exceeded.store(1, Ordering::Relaxed);
        m.fallback_runs.store(4, Ordering::Relaxed);
        m.active_connections.store(5, Ordering::Relaxed);
        m.inspector_certified.store(7, Ordering::Relaxed);
        m.inspector_refined.store(2, Ordering::Relaxed);
        m.inspector_rejected.store(1, Ordering::Relaxed);
        m.inspector_audit.record(Duration::from_micros(80));
        m.inspector_interval_hits.store(5, Ordering::Relaxed);
        let cache = ShardedPlanCache::new(1, 2);
        let verdicts = pdm_runtime::sharded::VerdictCache::with_capacity(1, 2);
        use pdm_runtime::Verdict;
        verdicts.insert_interval(9, &[(10, i64::MAX)], Verdict::Certified);
        verdicts.get(9, &[50]);
        verdicts.get(9, &[0]);
        verdicts.insert(9, vec![0], Verdict::Certified);
        verdicts.insert(9, vec![1], Verdict::Certified);
        verdicts.insert(9, vec![2], Verdict::Certified);
        let text = render_metrics(&m, &cache, &verdicts);
        assert!(text.contains("pdm_inspector_certified_total 7"));
        assert!(text.contains("pdm_inspector_refined_total 2"));
        assert!(text.contains("pdm_inspector_rejected_total 1"));
        assert!(text.contains("pdm_inspector_audit_us_count 1"));
        assert!(text.contains("pdm_inspector_interval_hits_total 5"));
        assert!(text.contains("pdm_verdict_cache_interval_hits_total 1"));
        assert!(text.contains("pdm_verdict_cache_misses_total 1"));
        assert!(text.contains("pdm_verdict_cache_evictions_total 1"));
        assert!(text.contains("pdm_verdict_cache_entries 2"));
        assert!(text.contains("pdm_verdict_cache_intervals 1"));
        assert!(text.contains("pdm_panics_total 3"));
        assert!(text.contains("pdm_shed_total 2"));
        assert!(text.contains("pdm_deadline_exceeded_total 1"));
        assert!(text.contains("pdm_fallback_runs_total 4"));
        assert!(text.contains("pdm_accept_errors_total 0"));
        assert!(text.contains("pdm_active_connections 5"));
    }
}
