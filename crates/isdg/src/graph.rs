//! ISDG construction by sequential access replay.

use crate::{IsdgError, Result};
use pdm_loopir::access::ArrayId;
use pdm_loopir::nest::LoopNest;
use pdm_loopir::stmt::AccessKind;
use pdm_matrix::vec::IVec;
use std::collections::HashMap;

/// Dependence classification of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Write then read (true dependence).
    Flow,
    /// Read then write.
    Anti,
    /// Write then write.
    Output,
}

/// A direct dependence between two iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    /// Source iteration (executes first).
    pub from: IVec,
    /// Target iteration (executes later).
    pub to: IVec,
    /// Classification.
    pub kind: EdgeKind,
    /// Statement index of the source access.
    pub stmt_from: usize,
    /// Statement index of the target access.
    pub stmt_to: usize,
}

/// The iteration-space dependence graph of a bounded nest.
#[derive(Debug, Clone)]
pub struct Isdg {
    iterations: Vec<IVec>,
    edges: Vec<DepEdge>,
    index_of: HashMap<IVec, usize>,
}

/// Default enumeration guard.
pub const DEFAULT_LIMIT: usize = 2_000_000;

/// Build the ISDG with **direct** edges: for every memory cell, arrows
/// connect each access to the most recent conflicting access before it
/// (write→read = flow, read→write = anti, write→write = output) — the
/// arrows the paper's figures draw. Loop-independent (same-iteration)
/// conflicts are not edges.
pub fn build(nest: &LoopNest) -> Result<Isdg> {
    build_with_limit(nest, DEFAULT_LIMIT)
}

/// [`build`] with an explicit iteration-count guard.
pub fn build_with_limit(nest: &LoopNest, limit: usize) -> Result<Isdg> {
    let iterations = nest.iterations()?;
    if iterations.len() > limit {
        return Err(IsdgError::TooLarge {
            iterations: iterations.len(),
            limit,
        });
    }
    let index_of: HashMap<IVec, usize> = iterations
        .iter()
        .enumerate()
        .map(|(k, v)| (v.clone(), k))
        .collect();

    // Per-cell state: last write (iter, stmt) and reads since that write.
    struct CellState {
        last_write: Option<(usize, usize)>,
        reads_since: Vec<(usize, usize)>,
    }
    let mut cells: HashMap<(ArrayId, IVec), CellState> = HashMap::new();
    let mut edges = Vec::new();

    for (it_idx, it) in iterations.iter().enumerate() {
        for (stmt_idx, stmt) in nest.body().iter().enumerate() {
            // Within a statement, reads happen before the write.
            let mut acc = stmt.accesses();
            acc.rotate_left(1); // accesses() lists the write first
            for (kind, r) in acc {
                let cell = (r.array, r.access.eval(it)?);
                let state = cells.entry(cell).or_insert(CellState {
                    last_write: None,
                    reads_since: Vec::new(),
                });
                match kind {
                    AccessKind::Read => {
                        if let Some((w_it, w_stmt)) = state.last_write {
                            if w_it != it_idx {
                                edges.push(DepEdge {
                                    from: iterations[w_it].clone(),
                                    to: it.clone(),
                                    kind: EdgeKind::Flow,
                                    stmt_from: w_stmt,
                                    stmt_to: stmt_idx,
                                });
                            }
                        }
                        state.reads_since.push((it_idx, stmt_idx));
                    }
                    AccessKind::Write => {
                        if let Some((w_it, w_stmt)) = state.last_write {
                            if w_it != it_idx {
                                edges.push(DepEdge {
                                    from: iterations[w_it].clone(),
                                    to: it.clone(),
                                    kind: EdgeKind::Output,
                                    stmt_from: w_stmt,
                                    stmt_to: stmt_idx,
                                });
                            }
                        }
                        for &(r_it, r_stmt) in &state.reads_since {
                            if r_it != it_idx {
                                edges.push(DepEdge {
                                    from: iterations[r_it].clone(),
                                    to: it.clone(),
                                    kind: EdgeKind::Anti,
                                    stmt_from: r_stmt,
                                    stmt_to: stmt_idx,
                                });
                            }
                        }
                        state.last_write = Some((it_idx, stmt_idx));
                        state.reads_since.clear();
                    }
                }
            }
        }
    }

    Ok(Isdg {
        iterations,
        edges,
        index_of,
    })
}

/// Build the graph of **all** dependent iteration pairs (not only direct
/// neighbours): two iterations are connected when any two of their
/// accesses conflict. Quadratic in the iteration count — validation only.
pub fn build_all_pairs(nest: &LoopNest, limit: usize) -> Result<Isdg> {
    let iterations = nest.iterations()?;
    if iterations.len() > limit {
        return Err(IsdgError::TooLarge {
            iterations: iterations.len(),
            limit,
        });
    }
    let index_of: HashMap<IVec, usize> = iterations
        .iter()
        .enumerate()
        .map(|(k, v)| (v.clone(), k))
        .collect();
    // Map every cell to its access list in execution order.
    let mut cell_log: HashMap<(ArrayId, IVec), Vec<(usize, usize, AccessKind)>> = HashMap::new();
    for (it_idx, it) in iterations.iter().enumerate() {
        for (stmt_idx, stmt) in nest.body().iter().enumerate() {
            let mut acc = stmt.accesses();
            acc.rotate_left(1);
            for (kind, r) in acc {
                cell_log
                    .entry((r.array, r.access.eval(it)?))
                    .or_default()
                    .push((it_idx, stmt_idx, kind));
            }
        }
    }
    let mut edges = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for log in cell_log.values() {
        for (a_pos, &(a_it, a_stmt, a_kind)) in log.iter().enumerate() {
            for &(b_it, b_stmt, b_kind) in log.iter().skip(a_pos + 1) {
                if a_it == b_it {
                    continue;
                }
                if a_kind == AccessKind::Read && b_kind == AccessKind::Read {
                    continue;
                }
                let kind = match (a_kind, b_kind) {
                    (AccessKind::Write, AccessKind::Read) => EdgeKind::Flow,
                    (AccessKind::Read, AccessKind::Write) => EdgeKind::Anti,
                    (AccessKind::Write, AccessKind::Write) => EdgeKind::Output,
                    _ => unreachable!(),
                };
                if seen.insert((a_it, b_it, a_stmt, b_stmt, kind)) {
                    edges.push(DepEdge {
                        from: iterations[a_it].clone(),
                        to: iterations[b_it].clone(),
                        kind,
                        stmt_from: a_stmt,
                        stmt_to: b_stmt,
                    });
                }
            }
        }
    }
    Ok(Isdg {
        iterations,
        edges,
        index_of,
    })
}

impl Isdg {
    /// Iterations in execution order.
    pub fn iterations(&self) -> &[IVec] {
        &self.iterations
    }

    /// Dependence edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Index of an iteration in execution order.
    pub fn index_of(&self, it: &IVec) -> Option<usize> {
        self.index_of.get(it).copied()
    }

    /// Iterations that participate in at least one dependence.
    pub fn dependent_iterations(&self) -> std::collections::HashSet<&IVec> {
        let mut s = std::collections::HashSet::new();
        for e in &self.edges {
            s.insert(&e.from);
            s.insert(&e.to);
        }
        s
    }

    /// All realized distance vectors (`to − from`).
    pub fn distances(&self) -> Vec<IVec> {
        self.edges
            .iter()
            .map(|e| e.to.sub(&e.from).expect("same dimension"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::parse_loop;
    use pdm_matrix::lex::is_lex_positive;

    #[test]
    fn chain_loop_edges() {
        // A[i] = A[i-1]: flow edge i-1 -> i for i in 1..=4 (read at i of
        // the value written at i-1), plus anti edges? A[i-1] read at i,
        // then written... A[i-1] is never written again (writes move
        // right), so: 4 flow edges only... but also the read A[0] at i=1
        // precedes no write to A[0] after (write A[i] touches 1..). Let's
        // just assert the flow chain.
        let nest = parse_loop("for i = 1..=5 { A[i] = A[i - 1] + 1; }").unwrap();
        let g = build(&nest).unwrap();
        let flows: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Flow)
            .collect();
        assert_eq!(flows.len(), 4);
        for e in flows {
            assert_eq!(e.to[0] - e.from[0], 1);
        }
    }

    #[test]
    fn edges_are_lexicographically_forward() {
        let nest = parse_loop(
            "for i1 = 0..=6 { for i2 = 0..=6 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let g = build(&nest).unwrap();
        assert!(!g.edges().is_empty());
        for e in g.edges() {
            let d = e.to.sub(&e.from).unwrap();
            assert!(is_lex_positive(&d), "edge distance {d} not positive");
        }
    }

    #[test]
    fn distances_match_pdm_lattice() {
        // Ground truth vs analysis on the reconstructed §4.1 loop.
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let g = build_all_pairs(&nest, 100_000).unwrap();
        let analysis = pdm_core::analyze(&nest).unwrap();
        let lat = analysis.lattice().unwrap();
        for d in g.distances() {
            assert!(lat.contains(&d).unwrap(), "distance {d} outside PDM");
        }
    }

    #[test]
    fn anti_and_output_edges() {
        // A[i] = A[i+1]: value read at i is overwritten at i+1 -> anti.
        let nest = parse_loop("for i = 0..=4 { A[i] = A[i + 1] + 1; }").unwrap();
        let g = build(&nest).unwrap();
        assert!(g.edges().iter().any(|e| e.kind == EdgeKind::Anti));
        // A[2*i - mod...]: overlapping writes -> output. Use A[0]-style:
        // every iteration writes cell 0.
        let nest2 = parse_loop("for i = 0..=3 { B[0] = i; }").unwrap();
        let g2 = build(&nest2).unwrap();
        let outs: Vec<_> = g2
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Output)
            .collect();
        assert_eq!(outs.len(), 3); // chain 0->1->2->3 (direct arrows only)
    }

    #[test]
    fn independent_loop_no_edges() {
        let nest = parse_loop("for i = 0..=9 { A[i] = i; }").unwrap();
        let g = build(&nest).unwrap();
        assert!(g.edges().is_empty());
        assert!(g.dependent_iterations().is_empty());
    }

    #[test]
    fn same_iteration_conflicts_excluded() {
        // A[i] = A[i] + 1 reads and writes the same cell in one iteration:
        // no loop-carried edge.
        let nest = parse_loop("for i = 0..=5 { A[i] = A[i] + 1; }").unwrap();
        let g = build(&nest).unwrap();
        assert!(g.edges().is_empty());
    }

    #[test]
    fn all_pairs_superset_of_direct() {
        let nest = parse_loop("for i = 0..=5 { B[0] = B[0] + i; }").unwrap();
        let direct = build(&nest).unwrap();
        let all = build_all_pairs(&nest, 10_000).unwrap();
        // Direct: consecutive chain; all-pairs: every ordered pair.
        assert!(all.edges().len() >= direct.edges().len());
        assert_eq!(
            all.edges()
                .iter()
                .filter(|e| e.kind == EdgeKind::Output)
                .count(),
            15
        );
    }

    #[test]
    fn limit_guard() {
        let nest = parse_loop("for i = 0..=999 { A[i] = A[i] + 1; }").unwrap();
        assert!(matches!(
            build_with_limit(&nest, 100),
            Err(IsdgError::TooLarge { .. })
        ));
    }
}
