//! # pdm-isdg — iteration-space dependence graphs
//!
//! The ground-truth oracle of the workspace: enumerate a bounded nest's
//! iterations, replay its memory accesses in sequential order, and record
//! every **direct** dependence (flow, anti, output) between iterations —
//! the graph the paper draws in Figures 2–5.
//!
//! Uses:
//! * [`graph::build`] — the ISDG itself (direct arrows, like the figures),
//! * [`graph::build_all_pairs`] — every dependent pair, including
//!   transitively implied ones (used to validate analyses),
//! * [`metrics`] — dependent/independent counts, weakly connected
//!   components, critical path, max parallel width,
//! * [`render`] — ASCII grids reproducing the paper's figures and DOT
//!   export,
//! * [`validate`] — check a parallel schedule against the graph: every
//!   edge must stay inside one parallel group with its order preserved.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph;
pub mod metrics;
pub mod render;
pub mod validate;

pub use graph::{build, DepEdge, EdgeKind, Isdg};

/// Errors from graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsdgError {
    /// Exact arithmetic failure.
    Matrix(pdm_matrix::MatrixError),
    /// Loop IR failure.
    Ir(pdm_loopir::IrError),
    /// The nest is too large to enumerate (guard against accidental
    /// quadratic blow-ups in tests).
    TooLarge {
        /// Number of iterations found.
        iterations: usize,
        /// Configured limit.
        limit: usize,
    },
}

impl std::fmt::Display for IsdgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsdgError::Matrix(e) => write!(f, "matrix error: {e}"),
            IsdgError::Ir(e) => write!(f, "loop IR error: {e}"),
            IsdgError::TooLarge { iterations, limit } => write!(
                f,
                "iteration space too large for ISDG: {iterations} > {limit}"
            ),
        }
    }
}

impl std::error::Error for IsdgError {}

impl From<pdm_matrix::MatrixError> for IsdgError {
    fn from(e: pdm_matrix::MatrixError) -> Self {
        IsdgError::Matrix(e)
    }
}

impl From<pdm_loopir::IrError> for IsdgError {
    fn from(e: pdm_loopir::IrError) -> Self {
        IsdgError::Ir(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, IsdgError>;
