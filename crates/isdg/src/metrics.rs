//! Parallelism metrics of an ISDG.
//!
//! These quantify what the paper's figures show qualitatively: how many
//! iterations are constrained, how many independent chains exist
//! (weakly connected components ≈ the numbered chains of Figures 2/4),
//! how long the longest chain is (the critical path bounding any
//! schedule), and the resulting average parallelism.

use crate::graph::Isdg;

/// Summary metrics of a dependence graph.
#[derive(Debug, Clone, PartialEq)]
pub struct IsdgMetrics {
    /// Total iterations.
    pub iterations: usize,
    /// Iterations participating in at least one dependence.
    pub dependent: usize,
    /// Iterations with no dependence at all.
    pub independent: usize,
    /// Number of dependence edges.
    pub edges: usize,
    /// Weakly connected components among *dependent* iterations.
    pub components: usize,
    /// Longest dependence chain, in iterations (1 when no edges).
    pub critical_path: usize,
    /// `iterations / critical_path` — the average parallelism an ideal
    /// scheduler can extract.
    pub avg_parallelism: f64,
}

/// Compute all metrics.
pub fn metrics(g: &Isdg) -> IsdgMetrics {
    let n = g.iterations().len();
    let dependent = g.dependent_iterations().len();
    let comps = components(g);
    let cp = critical_path(g);
    IsdgMetrics {
        iterations: n,
        dependent,
        independent: n - dependent,
        edges: g.edges().len(),
        components: comps,
        critical_path: cp,
        avg_parallelism: if cp == 0 {
            n as f64
        } else {
            n as f64 / cp as f64
        },
    }
}

/// Weakly connected components among dependent iterations (union-find).
pub fn components(g: &Isdg) -> usize {
    let n = g.iterations().len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != r {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    let mut touched = vec![false; n];
    for e in g.edges() {
        let a = g.index_of(&e.from).expect("edge endpoint");
        let b = g.index_of(&e.to).expect("edge endpoint");
        touched[a] = true;
        touched[b] = true;
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut roots = std::collections::HashSet::new();
    for x in 0..n {
        if touched[x] {
            let r = find(&mut parent, x);
            roots.insert(r);
        }
    }
    roots.len()
}

/// Longest path (in nodes) through the dependence DAG; 1 when edges are
/// absent but iterations exist, 0 for an empty graph.
pub fn critical_path(g: &Isdg) -> usize {
    let n = g.iterations().len();
    if n == 0 {
        return 0;
    }
    // Edges always point lexicographically forward, so iteration order is
    // a topological order.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in g.edges() {
        let a = g.index_of(&e.from).expect("edge endpoint");
        let b = g.index_of(&e.to).expect("edge endpoint");
        adj[a].push(b);
    }
    let mut depth = vec![1usize; n];
    let mut best = 1usize;
    for u in 0..n {
        for &v in &adj[u] {
            if depth[u] + 1 > depth[v] {
                depth[v] = depth[u] + 1;
                best = best.max(depth[v]);
            }
        }
    }
    best
}

/// Per-component chain labels (like the numbered chains in Figures 2/4):
/// component id per dependent iteration index, `None` for independent.
pub fn component_labels(g: &Isdg) -> Vec<Option<usize>> {
    let n = g.iterations().len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        r
    }
    let mut touched = vec![false; n];
    for e in g.edges() {
        let a = g.index_of(&e.from).expect("edge endpoint");
        let b = g.index_of(&e.to).expect("edge endpoint");
        touched[a] = true;
        touched[b] = true;
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent[ra] = rb;
        }
    }
    // Densely renumber roots in first-seen order.
    let mut ids = std::collections::HashMap::new();
    let mut out = vec![None; n];
    for x in 0..n {
        if touched[x] {
            let r = find(&mut parent, x);
            let next_id = ids.len() + 1;
            let id = *ids.entry(r).or_insert(next_id);
            out[x] = Some(id);
        }
    }
    out
}

/// Wavefront (level) schedule: the earliest parallel step at which each
/// iteration can run, i.e. its longest-path depth in the dependence DAG.
/// Returns per-iteration levels (0-based) plus the width of every level —
/// the max width is the peak parallelism of the ideal schedule.
pub fn level_schedule(g: &Isdg) -> (Vec<usize>, Vec<usize>) {
    let n = g.iterations().len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in g.edges() {
        let a = g.index_of(&e.from).expect("edge endpoint");
        let b = g.index_of(&e.to).expect("edge endpoint");
        adj[a].push(b);
    }
    let mut level = vec![0usize; n];
    for u in 0..n {
        for &v in &adj[u] {
            level[v] = level[v].max(level[u] + 1);
        }
    }
    let depth = level.iter().copied().max().map_or(0, |m| m + 1);
    let mut widths = vec![0usize; depth];
    for &l in &level {
        widths[l] += 1;
    }
    (level, widths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build;
    use pdm_loopir::parse::parse_loop;

    #[test]
    fn chain_metrics() {
        let nest = parse_loop("for i = 0..=9 { A[i + 1] = A[i] + 1; }").unwrap();
        let g = build(&nest).unwrap();
        let m = metrics(&g);
        assert_eq!(m.iterations, 10);
        assert_eq!(m.dependent, 10);
        assert_eq!(m.components, 1);
        assert_eq!(m.critical_path, 10);
        assert!((m.avg_parallelism - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_metrics() {
        let nest = parse_loop("for i = 0..=9 { A[i] = i; }").unwrap();
        let g = build(&nest).unwrap();
        let m = metrics(&g);
        assert_eq!(m.dependent, 0);
        assert_eq!(m.independent, 10);
        assert_eq!(m.components, 0);
        assert_eq!(m.critical_path, 1);
        assert!((m.avg_parallelism - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_chains() {
        // Stride-2 chain: even and odd cells form 2 components.
        let nest = parse_loop("for i = 0..=9 { A[i + 2] = A[i] + 1; }").unwrap();
        let g = build(&nest).unwrap();
        let m = metrics(&g);
        assert_eq!(m.components, 2);
        assert_eq!(m.critical_path, 5); // chain 0 -> 2 -> 4 -> 6 -> 8
    }

    #[test]
    fn component_labels_consistent() {
        let nest = parse_loop("for i = 0..=9 { A[i + 2] = A[i] + 1; }").unwrap();
        let g = build(&nest).unwrap();
        let labels = component_labels(&g);
        // Iterations 0,2,4,... share a label; 1,3,5,... share another.
        let l0 = labels[0].unwrap();
        let l1 = labels[1].unwrap();
        assert_ne!(l0, l1);
        assert_eq!(labels[2], Some(l0));
        assert_eq!(labels[3], Some(l1));
    }

    #[test]
    fn level_schedule_of_chain_and_independent() {
        let chain = parse_loop("for i = 0..=4 { A[i + 1] = A[i] + 1; }").unwrap();
        let g = build(&chain).unwrap();
        let (levels, widths) = level_schedule(&g);
        assert_eq!(levels, vec![0, 1, 2, 3, 4]);
        assert_eq!(widths, vec![1, 1, 1, 1, 1]);

        let indep = parse_loop("for i = 0..=4 { A[i] = i; }").unwrap();
        let g2 = build(&indep).unwrap();
        let (levels2, widths2) = level_schedule(&g2);
        assert!(levels2.iter().all(|&l| l == 0));
        assert_eq!(widths2, vec![5]);
    }

    #[test]
    fn level_schedule_consistent_with_critical_path() {
        let nest =
            parse_loop("for i = 1..=6 { for j = 1..=6 { A[i, j] = A[i - 1, j] + A[i, j - 1]; } }")
                .unwrap();
        let g = build(&nest).unwrap();
        let (_, widths) = level_schedule(&g);
        assert_eq!(widths.len(), critical_path(&g));
        assert_eq!(widths.iter().sum::<usize>(), g.iterations().len());
        // Diagonal wavefronts of the stencil peak at the space diagonal.
        assert_eq!(*widths.iter().max().unwrap(), 6);
    }

    #[test]
    fn paper_42_reconstruction_has_partitionable_structure() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[i1, 3*i2 + 2] = B[i1, i2] + 1;
               B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
             } }",
        )
        .unwrap();
        let g = build(&nest).unwrap();
        let m = metrics(&g);
        assert!(m.edges > 0);
        // At least det(PDM) = 4 independent components must exist
        // (partitions never merge chains).
        assert!(m.components >= 4, "components = {}", m.components);
    }
}
