//! Validating a parallel schedule against the ground-truth ISDG.
//!
//! A [`pdm_core::plan::ParallelPlan`] claims that (a) iterations in
//! different parallel groups are independent and (b) within a group the
//! transformed lexicographic order preserves every dependence. This module
//! checks both claims against the *actual* dependence edges of the bounded
//! iteration space — the strongest soundness test available short of
//! executing the loop (which `pdm-runtime` also does).

use crate::graph::Isdg;
use crate::Result;
use pdm_core::plan::ParallelPlan;
use pdm_matrix::lex::lex_cmp;

/// Result of validating a plan against an ISDG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Number of dependence edges examined.
    pub edges_checked: usize,
    /// Human-readable descriptions of violations (empty = sound).
    pub violations: Vec<String>,
}

impl ValidationReport {
    /// Did the plan pass?
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Check every ISDG edge against the plan's grouping and ordering.
pub fn validate_plan(g: &Isdg, plan: &ParallelPlan) -> Result<ValidationReport> {
    let mut violations = Vec::new();
    for e in g.edges() {
        let ga = plan
            .group_of(&e.from)
            .map_err(|err| crate::IsdgError::Ir(pdm_loopir::IrError::Invalid(err.to_string())))?;
        let gb = plan
            .group_of(&e.to)
            .map_err(|err| crate::IsdgError::Ir(pdm_loopir::IrError::Invalid(err.to_string())))?;
        if ga != gb {
            violations.push(format!(
                "dependent iterations {} -> {} land in different groups {:?} vs {:?}",
                e.from, e.to, ga, gb
            ));
            continue;
        }
        let ya = plan
            .transformed_index(&e.from)
            .map_err(|err| crate::IsdgError::Ir(pdm_loopir::IrError::Invalid(err.to_string())))?;
        let yb = plan
            .transformed_index(&e.to)
            .map_err(|err| crate::IsdgError::Ir(pdm_loopir::IrError::Invalid(err.to_string())))?;
        if lex_cmp(&ya, &yb) != std::cmp::Ordering::Less {
            violations.push(format!(
                "dependence {} -> {} reordered: {} !< {}",
                e.from, e.to, ya, yb
            ));
        }
    }
    Ok(ValidationReport {
        edges_checked: g.edges().len(),
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, build_all_pairs};
    use pdm_core::parallelize;
    use pdm_loopir::parse::parse_loop;

    #[test]
    fn paper_41_plan_validates() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let plan = parallelize(&nest).unwrap();
        let g = build_all_pairs(&nest, 100_000).unwrap();
        let r = validate_plan(&g, &plan).unwrap();
        assert!(r.edges_checked > 0);
        assert!(r.is_sound(), "violations: {:?}", r.violations);
    }

    #[test]
    fn paper_42_plan_validates() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[i1, 3*i2 + 2] = B[i1, i2] + 1;
               B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
             } }",
        )
        .unwrap();
        let plan = parallelize(&nest).unwrap();
        let g = build_all_pairs(&nest, 100_000).unwrap();
        let r = validate_plan(&g, &plan).unwrap();
        assert!(r.is_sound(), "violations: {:?}", r.violations);
    }

    #[test]
    fn stencil_and_scan_plans_validate() {
        for src in [
            "for i = 1..=30 { A[i] = A[i - 1] + 1; }",
            "for i = 0..=30 { A[2*i] = A[i] + 1; }",
            "for i = 1..=9 { for j = 1..=9 { A[i, j] = A[i - 1, j] + A[i, j - 1]; } }",
            "for i = 0..=9 { for j = 0..=9 { A[i, j] = A[i, j] + 1; } }",
        ] {
            let nest = parse_loop(src).unwrap();
            let plan = parallelize(&nest).unwrap();
            let g = build(&nest).unwrap();
            let r = validate_plan(&g, &plan).unwrap();
            assert!(r.is_sound(), "{src}: {:?}", r.violations);
        }
    }

    #[test]
    fn deliberately_broken_plan_is_caught() {
        // Craft a nest with a real dependence, then lie: analyze a
        // dependence-free nest with identical shape and use ITS plan
        // (fully parallel) on the dependent nest's ISDG.
        let dependent = parse_loop("for i = 1..=10 { A[i] = A[i - 1] + 1; }").unwrap();
        let independent = parse_loop("for i = 1..=10 { A[i] = i; }").unwrap();
        let wrong_plan = parallelize(&independent).unwrap();
        assert!(wrong_plan.is_fully_parallel());
        let g = build(&dependent).unwrap();
        let r = validate_plan(&g, &wrong_plan).unwrap();
        assert!(!r.is_sound(), "wrong plan must be rejected");
        assert!(r.violations[0].contains("different groups"));
    }
}
