//! ASCII and DOT rendering of 2-D ISDGs (the paper's Figures 2–5).

use crate::graph::Isdg;
use crate::metrics::component_labels;
use std::fmt::Write as _;

/// Render a depth-2 ISDG as an ASCII grid, paper style: one cell per
/// iteration, `.` for independent iterations, the component label (mod
/// 10) for dependent ones. The first index grows rightward, the second
/// upward (like the paper's axes).
pub fn ascii_grid(g: &Isdg) -> String {
    assert!(
        g.iterations().first().is_none_or(|i| i.dim() == 2),
        "ascii_grid renders 2-D spaces"
    );
    let Some(first) = g.iterations().first() else {
        return String::from("(empty iteration space)\n");
    };
    let mut min = [first[0], first[1]];
    let mut max = min;
    for it in g.iterations() {
        for d in 0..2 {
            min[d] = min[d].min(it[d]);
            max[d] = max[d].max(it[d]);
        }
    }
    let labels = component_labels(g);
    let mut grid: std::collections::HashMap<(i64, i64), char> = std::collections::HashMap::new();
    for (idx, it) in g.iterations().iter().enumerate() {
        let ch = match labels[idx] {
            Some(c) => char::from_digit((c % 10) as u32, 10).unwrap(),
            None => '.',
        };
        grid.insert((it[0], it[1]), ch);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "i2 ^  (i1 -> right: {}..{}, i2 -> up: {}..{})",
        min[0], max[0], min[1], max[1]
    );
    for i2 in (min[1]..=max[1]).rev() {
        let _ = write!(out, "{i2:>4} |");
        for i1 in min[0]..=max[0] {
            let c = grid.get(&(i1, i2)).copied().unwrap_or(' ');
            let _ = write!(out, " {c}");
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "      ");
    for _ in min[0]..=max[0] {
        let _ = write!(out, "--");
    }
    let _ = writeln!(out);
    out
}

/// Summarize the edges as distance-vector counts (what the arrows of the
/// figures encode), sorted by frequency.
pub fn distance_histogram(g: &Isdg) -> Vec<(Vec<i64>, usize)> {
    let mut hist: std::collections::HashMap<Vec<i64>, usize> = std::collections::HashMap::new();
    for d in g.distances() {
        *hist.entry(d.0).or_insert(0) += 1;
    }
    let mut out: Vec<_> = hist.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// GraphViz DOT output (any depth).
pub fn dot(g: &Isdg) -> String {
    let mut out = String::from("digraph isdg {\n  rankdir=BT;\n");
    for it in g.iterations() {
        let name = node_name(it);
        let _ = writeln!(out, "  {name} [label=\"{}\"];", label(it));
    }
    for e in g.edges() {
        let style = match e.kind {
            crate::graph::EdgeKind::Flow => "solid",
            crate::graph::EdgeKind::Anti => "dashed",
            crate::graph::EdgeKind::Output => "dotted",
        };
        let _ = writeln!(
            out,
            "  {} -> {} [style={style}];",
            node_name(&e.from),
            node_name(&e.to)
        );
    }
    out.push_str("}\n");
    out
}

fn node_name(it: &pdm_matrix::vec::IVec) -> String {
    let mut s = String::from("n");
    for (k, v) in it.iter().enumerate() {
        if k > 0 {
            s.push('_');
        }
        if *v < 0 {
            let _ = write!(s, "m{}", -v);
        } else {
            let _ = write!(s, "{v}");
        }
    }
    s
}

fn label(it: &pdm_matrix::vec::IVec) -> String {
    let parts: Vec<String> = it.iter().map(|v| v.to_string()).collect();
    format!("({})", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build;
    use pdm_loopir::parse::parse_loop;

    #[test]
    fn grid_marks_dependent_cells() {
        let nest =
            parse_loop("for i1 = 0..=3 { for i2 = 0..=3 { A[i1 + 1, i2] = A[i1, i2] + 1; } }")
                .unwrap();
        let g = build(&nest).unwrap();
        let s = ascii_grid(&g);
        // All cells dependent (chains along i1): no dots in the grid rows.
        let body: String = s.lines().filter(|l| l.contains('|')).skip(1).collect();
        assert!(!body.contains('.'), "{s}");
        // 4 chains (one per i2): labels 1..=4 appear.
        assert!(s.contains('1') && s.contains('4'), "{s}");
    }

    #[test]
    fn grid_shows_independent_dots() {
        let nest = parse_loop("for i1 = 0..=2 { for i2 = 0..=2 { A[i1, i2] = 1; } }").unwrap();
        let g = build(&nest).unwrap();
        let s = ascii_grid(&g);
        assert!(s.contains('.'));
    }

    #[test]
    fn histogram_counts() {
        let nest = parse_loop("for i = 0..=9 { A[i + 2] = A[i] + 1; }").unwrap();
        let g = build(&nest).unwrap();
        let h = distance_histogram(&g);
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].0, vec![2]);
        assert_eq!(h[0].1, 8);
    }

    #[test]
    fn dot_output_well_formed() {
        let nest = parse_loop("for i = 0..=3 { A[i + 1] = A[i] + 1; }").unwrap();
        let g = build(&nest).unwrap();
        let d = dot(&g);
        assert!(d.starts_with("digraph"));
        assert!(d.contains("->"));
        assert!(d.ends_with("}\n"));
        // Negative indices must produce valid node names.
        let neg = parse_loop("for i = -2..=2 { A[i + 2] = A[i] + 1; }").unwrap();
        let gd = dot(&build(&neg).unwrap());
        assert!(gd.contains("nm2"), "{gd}");
    }
}
