//! Code-generation cost: Fourier–Motzkin bound derivation for the
//! transformed iteration spaces (the paper's §4.1 cites FM \[1, 13\] for
//! the transformed loop limits).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdm_matrix::vec::IVec;
use pdm_poly::bounds::LoopBounds;
use pdm_poly::expr::AffineExpr;
use pdm_poly::system::System;

/// A skewed n-dimensional box: 0 <= x_k + x_{k-1} <= N.
fn skewed_box(n: usize, size: i64) -> System {
    let mut s = System::universe(n);
    for k in 0..n {
        let mut coeffs = vec![0i64; n];
        coeffs[k] = 1;
        if k > 0 {
            coeffs[k - 1] = 1;
        }
        s.add_ge0(AffineExpr::new(IVec(coeffs.clone()), 0)).unwrap();
        let neg: Vec<i64> = coeffs.iter().map(|c| -c).collect();
        s.add_ge0(AffineExpr::new(IVec(neg), size)).unwrap();
    }
    s
}

fn bench_fm_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm/bounds_by_depth");
    for n in [2usize, 3, 4, 6] {
        let sys = skewed_box(n, 100);
        group.bench_with_input(BenchmarkId::from_parameter(n), &sys, |b, sys| {
            b.iter(|| LoopBounds::from_system(sys).unwrap().dim())
        });
    }
    group.finish();
}

fn bench_fm_prune_levels(c: &mut Criterion) {
    use pdm_poly::fm::Prune;
    // The deep coupled system where raw FM blows up: pruning levels
    // side by side (see also `bench_fm`, which snapshots these counts).
    let sys = pdm_bench::perf::random_deep_system(5, 10, 11);
    let mut group = c.benchmark_group("fm/bounds_by_prune");
    for (name, prune) in [("none", Prune::None), ("exact", Prune::Exact)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &sys, |b, sys| {
            b.iter(|| LoopBounds::from_system_pruned(sys, prune).unwrap().dim())
        });
    }
    group.finish();
}

fn bench_fm_transformed_plan(c: &mut Criterion) {
    // The real workload: bounds of the paper's transformed loops.
    let nest = pdm_bench::paper41(-100, 100);
    c.bench_function("fm/paper41_plan_bounds", |b| {
        b.iter(|| pdm_core::parallelize(&nest).unwrap().bounds().dim())
    });
}

fn bench_enumeration(c: &mut Criterion) {
    let sys = skewed_box(2, 100);
    let bounds = LoopBounds::from_system(&sys).unwrap();
    c.bench_function("fm/enumerate_skewed_100x100", |b| {
        b.iter(|| bounds.count_points().unwrap())
    });
}

/// Time-bounded criterion config so the full workspace bench run stays
/// tractable while remaining statistically useful.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_fm_depth, bench_fm_prune_levels, bench_fm_transformed_plan, bench_enumeration
}
criterion_main!(benches);
