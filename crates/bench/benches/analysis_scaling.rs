//! EXTRA-ANALYSIS: cost scaling of the core algorithms.
//!
//! * Algorithm 1's column-operation count is `O(n² ln M)` (paper §3.2):
//!   sweep depth `n` and magnitude `M` independently.
//! * Ablation: Bareiss fraction-free determinant vs naive cofactor
//!   expansion (the reason the exact kernel stays polynomial).
//! * HNF reduction cost over random generator sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdm_matrix::det::{det, det_cofactor};
use pdm_matrix::hnf::hermite_normal_form;
use pdm_matrix::mat::IMat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_hnf(rng: &mut StdRng, rows: usize, cols: usize, magnitude: i64) -> IMat {
    loop {
        let data: Vec<i64> = (0..rows * cols)
            .map(|_| rng.gen_range(-magnitude..=magnitude))
            .collect();
        let m = IMat::from_flat(rows, cols, &data).unwrap();
        let h = hermite_normal_form(&m).unwrap().hnf;
        if h.rows() == rows.min(cols) {
            return h;
        }
    }
}

fn bench_algorithm1_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/algorithm1_depth");
    let mut rng = StdRng::seed_from_u64(42);
    for n in [2usize, 4, 6, 8, 12] {
        let h = random_hnf(&mut rng, n / 2 + 1, n, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| pdm_core::algorithm1::algorithm1(h).unwrap().zero_cols)
        });
    }
    group.finish();
}

fn bench_algorithm1_magnitude(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/algorithm1_magnitude");
    let mut rng = StdRng::seed_from_u64(7);
    for m in [10i64, 1_000, 100_000] {
        // Entries beyond ~1e5 can drive the (checked) transform
        // arithmetic past i64 on adversarial instances — retry until an
        // in-range instance is found so the bench measures the
        // successful-path cost the O(n² ln M) bound describes.
        let h = loop {
            let cand = random_hnf(&mut rng, 2, 4, m);
            if pdm_core::algorithm1::algorithm1(&cand).is_ok() {
                break cand;
            }
        };
        group.bench_with_input(BenchmarkId::from_parameter(m), &h, |b, h| {
            b.iter(|| pdm_core::algorithm1::algorithm1(h).unwrap().zero_cols)
        });
    }
    group.finish();
}

fn bench_det_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/det_ablation");
    let mut rng = StdRng::seed_from_u64(3);
    for n in [4usize, 6, 8] {
        let data: Vec<i64> = (0..n * n).map(|_| rng.gen_range(-9..=9)).collect();
        let m = IMat::from_flat(n, n, &data).unwrap();
        group.bench_with_input(BenchmarkId::new("bareiss", n), &m, |b, m| {
            b.iter(|| det(m).unwrap())
        });
        if n <= 8 {
            group.bench_with_input(BenchmarkId::new("cofactor", n), &m, |b, m| {
                b.iter(|| det_cofactor(m).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_hnf(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/hnf");
    let mut rng = StdRng::seed_from_u64(11);
    for n in [4usize, 8, 16] {
        // Naive (non-modular) HNF suffers intermediate coefficient swell
        // that can exceed i64 on adversarial dense instances; the checked
        // arithmetic reports it. Bench the successful-path cost on
        // instances that reduce in range (small entries, bounded retry).
        let m = (0..200).find_map(|_| {
            let data: Vec<i64> = (0..n * n).map(|_| rng.gen_range(-3..=3)).collect();
            let m = IMat::from_flat(n, n, &data).unwrap();
            hermite_normal_form(&m).ok().map(|_| m)
        });
        let Some(m) = m else {
            continue; // no in-range instance found at this size
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| hermite_normal_form(m).unwrap().rank)
        });
    }
    group.finish();
}

/// Time-bounded criterion config so the full workspace bench run stays
/// tractable while remaining statistically useful.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_algorithm1_depth,
    bench_algorithm1_magnitude,
    bench_det_ablation,
    bench_hnf
}
criterion_main!(benches);
