//! EXTRA-SPEEDUP companion: how the generated schedules scale with the
//! number of rayon workers (1, 2, 4) — the closest modern analogue of the
//! paper's shared-memory multiprocessor target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdm_bench::{paper41, paper42};
use pdm_runtime::memory::Memory;

fn bench_threads(c: &mut Criterion) {
    for (label, nest) in [("paper41", paper41(0, 249)), ("paper42", paper42(0, 249))] {
        let plan = pdm_core::parallelize(&nest).unwrap();
        let iters = nest.iterations().unwrap().len() as u64;
        let mut group = c.benchmark_group(format!("threads/{label}"));
        group.throughput(Throughput::Elements(iters));
        for t in [1usize, 2, 4] {
            group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
                let mut m = Memory::for_nest(&nest).unwrap();
                m.init_deterministic(1);
                b.iter(|| {
                    pdm_runtime::exec::run_parallel_with_threads(&nest, &plan, &m, t).unwrap()
                })
            });
        }
        group.finish();
    }
}

/// Time-bounded criterion config (see other benches).
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_threads
}
criterion_main!(benches);
