//! EXTRA-SPEEDUP: sequential vs rayon-parallel execution of the generated
//! schedules (the practical payoff the paper's transformations target).
//!
//! Absolute numbers depend on the host; the *shape* to reproduce is:
//! loops where the PDM finds doall/partition parallelism speed up with
//! cores, fully sequential chains do not.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdm_bench::{paper41, paper42};
use pdm_loopir::parse::parse_loop_with;
use pdm_runtime::memory::Memory;

fn bench_pair(c: &mut Criterion, label: &str, nest: &pdm_loopir::nest::LoopNest) {
    let plan = pdm_core::parallelize(nest).unwrap();
    let iters = nest.iterations().unwrap().len() as u64;
    let mut group = c.benchmark_group(format!("speedup/{label}"));
    group.throughput(Throughput::Elements(iters));
    group.bench_function("sequential", |b| {
        let mut m = Memory::for_nest(nest).unwrap();
        m.init_deterministic(1);
        b.iter(|| pdm_runtime::run_sequential(nest, &m).unwrap())
    });
    group.bench_function("parallel", |b| {
        let mut m = Memory::for_nest(nest).unwrap();
        m.init_deterministic(1);
        b.iter(|| pdm_runtime::run_parallel(nest, &plan, &m).unwrap())
    });
    group.bench_function("transformed_serial", |b| {
        let mut m = Memory::for_nest(nest).unwrap();
        m.init_deterministic(1);
        b.iter(|| pdm_runtime::run_transformed_sequential(nest, &plan, &m).unwrap())
    });
    group.finish();
}

fn bench_speedups(c: &mut Criterion) {
    bench_pair(c, "paper41_n200", &paper41(0, 199));
    bench_pair(c, "paper42_n200", &paper42(0, 199));
    let inner_par = parse_loop_with(
        "for i = 1..N { for j = 0..N { A[i, j] = A[i - 1, j] + 1; } }",
        &[("N", 200)],
    )
    .unwrap();
    bench_pair(c, "inner_parallel_n200", &inner_par);
    let chain = parse_loop_with(
        "for i = 1..N { for j = 0..N { A[i, j] = A[i - 1, j + 1] + A[i - 1, j] + 1; } }",
        &[("N", 200)],
    )
    .unwrap();
    bench_pair(c, "sequential_chain_n200", &chain);
}

/// Time-bounded criterion config so the full workspace bench run stays
/// tractable while remaining statistically useful.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_speedups
}
criterion_main!(benches);
