//! Analysis + transformation cost of the full pipeline (PDM derivation,
//! Algorithm 1, partitioning, Fourier–Motzkin bounds) over the loop
//! suite. The paper's efficiency claim: the transformation needs no loop
//! bounds until code generation and is "quite efficient".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdm_baselines::suite;

fn bench_analyze(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/analyze");
    for entry in suite::SUITE {
        let nest = suite::instantiate(entry, 100);
        group.bench_with_input(BenchmarkId::from_parameter(entry.name), &nest, |b, nest| {
            b.iter(|| pdm_core::analyze(nest).unwrap().rank())
        });
    }
    group.finish();
}

fn bench_parallelize(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/parallelize");
    for entry in suite::SUITE {
        let nest = suite::instantiate(entry, 100);
        group.bench_with_input(BenchmarkId::from_parameter(entry.name), &nest, |b, nest| {
            b.iter(|| pdm_core::parallelize(nest).unwrap().partition_count())
        });
    }
    group.finish();
}

/// Analysis cost is independent of the loop bounds (the paper's point):
/// time the same loop at very different N.
fn bench_bounds_independence(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/bounds_independence");
    for n in [10i64, 1_000, 1_000_000] {
        let nest = suite::instantiate(&suite::SUITE[0], n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &nest, |b, nest| {
            b.iter(|| pdm_core::analyze(nest).unwrap().rank())
        });
    }
    group.finish();
}

/// Time-bounded criterion config so the full workspace bench run stays
/// tractable while remaining statistically useful.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_analyze, bench_parallelize, bench_bounds_independence
}
criterion_main!(benches);
