//! EXTRA-PARTS: Theorem-2 machinery costs — offset enumeration, group
//! construction, and the per-iteration overhead of the partitioned walk
//! compared to a plain sequential walk over the same space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdm_bench::{paper41, paper42};
use pdm_core::partition::Partitioning;
use pdm_matrix::mat::IMat;
use pdm_matrix::vec::IVec;

fn bench_offsets(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition/offsets");
    for (label, rows) in [
        ("det4", vec![vec![2i64, 1], vec![0, 2]]),
        ("det36", vec![vec![6, 1], vec![0, 6]]),
        ("det512", vec![vec![8, 0, 1], vec![0, 8, 3], vec![0, 0, 8]]),
    ] {
        let p = Partitioning::new(IMat::from_rows(&rows).unwrap()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &p, |b, p| {
            b.iter(|| p.offsets().len())
        });
    }
    group.finish();
}

fn bench_offset_of(c: &mut Criterion) {
    let p = Partitioning::new(IMat::from_rows(&[vec![2, 1], vec![0, 2]]).unwrap()).unwrap();
    c.bench_function("partition/offset_of", |b| {
        let x = IVec::from_slice(&[123, -457]);
        b.iter(|| p.offset_of(&x).unwrap())
    });
}

fn bench_group_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition/groups");
    for (label, nest) in [("paper41", paper41(0, 199)), ("paper42", paper42(0, 199))] {
        let plan = pdm_core::parallelize(&nest).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &plan, |b, plan| {
            b.iter(|| pdm_runtime::exec::groups(plan).unwrap().len())
        });
    }
    group.finish();
}

fn bench_group_streaming(c: &mut Criterion) {
    // The streaming counterpart of `partition/groups`: walk the same
    // group space with an O(depth) cursor, never materializing it.
    let mut group = c.benchmark_group("partition/groups_streamed");
    for (label, nest) in [("paper41", paper41(0, 199)), ("paper42", paper42(0, 199))] {
        let plan = pdm_core::parallelize(&nest).unwrap();
        let noff = plan.partition().map_or(1, |p| p.offsets().len());
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(plan, noff),
            |b, (plan, noff)| {
                b.iter(|| {
                    let mut cur = pdm_runtime::schedule::GroupCursor::new(
                        plan.bounds(),
                        plan.doall_count(),
                        *noff,
                    )
                    .unwrap();
                    let mut n = 0u64;
                    while cur.current().is_some() {
                        n += 1;
                        cur.advance().unwrap();
                    }
                    n
                })
            },
        );
    }
    group.finish();
}

fn bench_walk_overhead(c: &mut Criterion) {
    // Compare iterating the §4.2 space via the partitioned group walker
    // (strides + residues) against a plain nested loop of equal size.
    let nest = paper42(0, 199);
    let plan = pdm_core::parallelize(&nest).unwrap();
    let gs = pdm_runtime::exec::groups(&plan).unwrap();
    c.bench_function("partition/walk_partitioned_200x200", |b| {
        b.iter(|| {
            let mut count = 0u64;
            for g in &gs {
                pdm_runtime::exec::walk_group(&nest, &plan, g, |_| {
                    count += 1;
                    Ok(())
                })
                .unwrap();
            }
            count
        })
    });
    c.bench_function("partition/walk_plain_200x200", |b| {
        b.iter(|| {
            let mut count = 0u64;
            for i1 in 0..200i64 {
                for i2 in 0..200i64 {
                    std::hint::black_box((i1, i2));
                    count += 1;
                }
            }
            count
        })
    });
}

/// Time-bounded criterion config so the full workspace bench run stays
/// tractable while remaining statistically useful.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_offsets,
    bench_offset_of,
    bench_group_enumeration,
    bench_group_streaming,
    bench_walk_overhead
}
criterion_main!(benches);
