//! TAB1 quantitative side: analysis cost of every method over the suite
//! (the table's content itself is printed by the `table1` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdm_baselines::report::Parallelizer;
use pdm_baselines::suite;

fn bench_methods(c: &mut Criterion) {
    let methods: Vec<Box<dyn Parallelizer>> = vec![
        Box::new(pdm_baselines::banerjee::Banerjee),
        Box::new(pdm_baselines::dhollander::DHollander),
        Box::new(pdm_baselines::wolf_lam::WolfLam),
        Box::new(pdm_baselines::shang::ShangBdv),
        Box::new(pdm_baselines::pdm_method::PdmMethod),
    ];
    for entry in [&suite::SUITE[0], &suite::SUITE[4]] {
        let nest = suite::instantiate(entry, 50);
        let mut group = c.benchmark_group(format!("table1/{}", entry.name));
        for m in &methods {
            group.bench_with_input(BenchmarkId::from_parameter(m.name()), &nest, |b, nest| {
                b.iter(|| m.analyze(nest).unwrap().applicable)
            });
        }
        group.finish();
    }
}

/// Time-bounded criterion config so the full workspace bench run stays
/// tractable while remaining statistically useful.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_methods
}
criterion_main!(benches);
