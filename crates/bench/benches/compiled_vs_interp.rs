//! Compiled engine vs. tree-walking interpreter, sequential and parallel,
//! on the paper's §4.1/§4.2 nests and a classic stencil.
//!
//! The acceptance bar for the compiled engine is ≥ 3× iteration
//! throughput over the interpreter (see `BENCH_runtime.json`, emitted by
//! the `bench_runtime` binary; this criterion bench is the interactive
//! view of the same comparison).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdm_bench::{paper41, paper42};
use pdm_loopir::parse::parse_loop_with;
use pdm_runtime::compile::{CompiledNest, CompiledPlan};
use pdm_runtime::memory::Memory;

fn bench_case(c: &mut Criterion, label: &str, nest: &pdm_loopir::nest::LoopNest) {
    let plan = pdm_core::parallelize(nest).unwrap();
    let iters = nest.iterations().unwrap().len() as u64;
    let mut group = c.benchmark_group(format!("compiled_vs_interp/{label}"));
    group.throughput(Throughput::Elements(iters));

    group.bench_function("interp_seq", |b| {
        let mut m = Memory::for_nest(nest).unwrap();
        m.init_deterministic(1);
        b.iter(|| pdm_runtime::run_sequential(nest, &m).unwrap())
    });
    group.bench_function("compiled_seq", |b| {
        let mut m = Memory::for_nest(nest).unwrap();
        m.init_deterministic(1);
        let compiled = CompiledNest::compile(nest, &m).unwrap();
        let mut scratch = compiled.new_scratch();
        b.iter(|| compiled.run_with_scratch(&m, &mut scratch).unwrap())
    });
    group.bench_function("interp_par", |b| {
        let mut m = Memory::for_nest(nest).unwrap();
        m.init_deterministic(1);
        b.iter(|| pdm_runtime::run_parallel(nest, &plan, &m).unwrap())
    });
    group.bench_function("compiled_par", |b| {
        let mut m = Memory::for_nest(nest).unwrap();
        m.init_deterministic(1);
        let compiled = CompiledPlan::compile(nest, &plan, &m).unwrap();
        b.iter(|| compiled.run_parallel(&m).unwrap())
    });
    group.finish();
}

fn bench_compiled_vs_interp(c: &mut Criterion) {
    bench_case(c, "paper41_n200", &paper41(0, 199));
    bench_case(c, "paper42_n200", &paper42(0, 199));
    let stencil = parse_loop_with(
        "for i = 1..N { for j = 1..N { A[i, j] = A[i - 1, j] + A[i, j - 1]; } }",
        &[("N", 200)],
    )
    .unwrap();
    bench_case(c, "stencil_n200", &stencil);
}

/// Time-bounded criterion config so the full workspace bench run stays
/// fast.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_compiled_vs_interp
}
criterion_main!(benches);
