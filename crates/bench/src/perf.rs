//! Shared measurement harness behind `bench_runtime`, `bench_fm`,
//! `bench_groups`, and the `bench_check` regression gate.
//!
//! The bench binaries write `BENCH_runtime.json` / `BENCH_fm.json` /
//! `BENCH_groups.json` snapshots into the repo; `bench_check` re-runs the
//! same measurement functions and compares the fresh numbers against the
//! committed files.
//!
//! # What the gate compares
//!
//! Absolute throughput (`*_per_s`, `*_ms`) is machine-dependent — a CI
//! runner is not the workstation that committed the snapshot — so those
//! numbers are reported but not gated by default. The gate fails on
//! **ratio metrics**, which are computed from two measurements on the
//! *same* machine in the *same* run and therefore transfer across hosts:
//!
//! * `*_speedup` — e.g. compiled vs. interpreted iteration throughput;
//! * `*_reduction` — constraint-count ratios (fully deterministic).
//!
//! A gated metric regresses when `fresh < committed · (1 − tolerance)`.
//! Deterministic count ratios use [`TOLERANCE`] = 25%; timing-based
//! `*_speedup` ratios use the wider [`TIMING_TOLERANCE`] = 40%, because
//! scheduler jitter on shared CI runners moves them by double-digit
//! percentages run to run while a genuine engine regression (a speedup
//! collapsing toward 1×) still lands far past the gate. Set
//! `BENCH_CHECK_STRICT=1` to additionally gate the absolute `*_per_s`
//! numbers (useful on a pinned machine).

use crate::{paper41, paper42, time};
use pdm_loopir::nest::LoopNest;
use pdm_loopir::parse::parse_loop_with;
use pdm_matrix::vec::IVec;
use pdm_poly::bounds::LoopBounds;
use pdm_poly::expr::AffineExpr;
use pdm_poly::fm::{eliminate_all_stats, ElimStats, Prune};
use pdm_poly::system::System;
use pdm_runtime::compile::{CompiledNest, CompiledPlan};
use pdm_runtime::equivalence::compare_three_way;
use pdm_runtime::memory::Memory;
use pdm_runtime::schedule::{cost_skewed, Schedule};
use rand::prelude::*;

/// Best-of repetitions for the runtime throughput cases.
pub const RUNTIME_REPS: usize = 5;
/// Best-of repetitions for the FM timing cases.
pub const FM_REPS: usize = 3;
/// Allowed relative drop of a deterministic gated metric (count ratios)
/// before the gate fails.
pub const TOLERANCE: f64 = 0.25;
/// Allowed relative drop of a timing-based gated metric (`*_speedup`),
/// widened to absorb shared-runner scheduler jitter.
pub const TIMING_TOLERANCE: f64 = 0.40;

fn best<F: FnMut() -> T, T>(reps: usize, mut f: F) -> f64 {
    let mut bestt = f64::INFINITY;
    for _ in 0..reps {
        let (_, t) = time(&mut f);
        bestt = bestt.min(t);
    }
    bestt
}

// ---------------------------------------------------------------------
// Runtime throughput (compiled engine vs. interpreter).
// ---------------------------------------------------------------------

/// One compiled-vs-interpreted throughput case (times in seconds).
pub struct RuntimeCase {
    /// Case label (stable across runs; used as the JSON metric path).
    pub name: &'static str,
    /// Iterations per full execution.
    pub iterations: u64,
    /// Interpreter, sequential.
    pub interp_seq: f64,
    /// Compiled engine, sequential.
    pub compiled_seq: f64,
    /// Interpreter, parallel schedule.
    pub interp_par: f64,
    /// Compiled engine, parallel schedule.
    pub compiled_par: f64,
    /// Configured worker threads during the parallel measurements.
    pub threads: usize,
    /// Workers the last parallel region actually used
    /// ([`rayon::last_region_threads`]).
    pub observed_threads: usize,
}

fn run_runtime_case(name: &'static str, nest: &LoopNest) -> RuntimeCase {
    let plan = pdm_core::parallelize(nest).expect("plan");
    let rep = compare_three_way(nest, &plan, 1).expect("execute");
    assert!(
        rep.all_equal(),
        "{name}: executors diverged — refusing to time"
    );
    let iterations = rep.iterations;

    let mut m = Memory::for_nest(nest).expect("alloc");
    m.init_deterministic(1);

    let interp_seq = best(RUNTIME_REPS, || {
        pdm_runtime::run_sequential(nest, &m).unwrap()
    });
    let compiled = CompiledNest::compile(nest, &m).expect("compile nest");
    let mut scratch = compiled.new_scratch();
    let compiled_seq = best(RUNTIME_REPS, || {
        compiled.run_with_scratch(&m, &mut scratch).unwrap()
    });
    let interp_par = best(RUNTIME_REPS, || {
        pdm_runtime::run_parallel(nest, &plan, &m).unwrap()
    });
    let cplan = CompiledPlan::compile(nest, &plan, &m).expect("compile plan");
    let compiled_par = best(RUNTIME_REPS, || cplan.run_parallel(&m).unwrap());

    RuntimeCase {
        name,
        iterations,
        interp_seq,
        compiled_seq,
        interp_par,
        compiled_par,
        threads: rayon::current_num_threads(),
        observed_threads: rayon::last_region_threads(),
    }
}

/// The classic 2-D first-order stencil over an `n × n` interior — shared
/// by the runtime and FM case families so `stencil_n200` names the same
/// workload in both snapshots.
pub fn stencil2d(n: i64) -> LoopNest {
    parse_loop_with(
        "for i = 1..N { for j = 1..N { A[i, j] = A[i - 1, j] + A[i, j - 1]; } }",
        &[("N", n)],
    )
    .expect("stencil parses")
}

/// Measure every runtime case, printing one summary line per case.
pub fn runtime_cases() -> Vec<RuntimeCase> {
    let cases = vec![
        run_runtime_case("paper41_n200", &paper41(0, 199)),
        run_runtime_case("paper42_n200", &paper42(0, 199)),
        run_runtime_case("stencil_n200", &stencil2d(200)),
    ];
    for c in &cases {
        let tp = |secs: f64| c.iterations as f64 / secs;
        println!(
            "{:<14} seq {:>10.0} -> {:>11.0} iters/s ({:4.1}x)   par {:>10.0} -> {:>11.0} iters/s ({:4.1}x)",
            c.name,
            tp(c.interp_seq),
            tp(c.compiled_seq),
            c.interp_seq / c.compiled_seq,
            tp(c.interp_par),
            tp(c.compiled_par),
            c.interp_par / c.compiled_par,
        );
    }
    cases
}

/// Serialize runtime cases into the committed `BENCH_runtime.json`
/// shape. Every case records the worker-thread count it actually ran
/// with (`threads` configured, `observed_threads` used).
pub fn runtime_json(cases: &[RuntimeCase]) -> String {
    let mut out = String::from("{\n  \"bench\": \"compiled_vs_interp\",\n");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.push_str(&format!(
        "  \"machine_threads\": {threads},\n  \"cases\": [\n"
    ));
    for (i, c) in cases.iter().enumerate() {
        let tp = |secs: f64| c.iterations as f64 / secs;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iterations\": {}, \
             \"threads\": {}, \"observed_threads\": {}, \
             \"interp_seq_iters_per_s\": {:.0}, \"compiled_seq_iters_per_s\": {:.0}, \
             \"interp_par_iters_per_s\": {:.0}, \"compiled_par_iters_per_s\": {:.0}, \
             \"seq_speedup\": {:.2}, \"par_speedup\": {:.2}}}{}\n",
            c.name,
            c.iterations,
            c.threads,
            c.observed_threads,
            tp(c.interp_seq),
            tp(c.compiled_seq),
            tp(c.interp_par),
            tp(c.compiled_par),
            c.interp_seq / c.compiled_seq,
            c.interp_par / c.compiled_par,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Fourier–Motzkin pruning effectiveness.
// ---------------------------------------------------------------------

/// Bound-generation stats for one loop nest: rows and wall time with
/// pruning off vs. on (times in seconds).
pub struct FmPlanCase {
    /// Case label.
    pub name: &'static str,
    /// Nest depth.
    pub depth: usize,
    /// Total per-level bound rows without pruning.
    pub rows_unpruned: usize,
    /// Total per-level bound rows with exact pruning.
    pub rows_pruned: usize,
    /// Rows the compiled walker evaluates (post-pruning).
    pub compiled_rows: usize,
    /// Bound-generation time, unpruned baseline.
    pub bounds_unpruned: f64,
    /// Bound-generation time with exact pruning.
    pub bounds_pruned: f64,
    /// Full `parallelize` wall time (pruning on).
    pub plan: f64,
}

fn transformed_system(nest: &LoopNest) -> (System, usize) {
    let plan = pdm_core::parallelize(nest).expect("plan");
    let tsys =
        pdm_core::plan::transformed_system(nest, plan.inverse()).expect("transformed system");
    (tsys, plan.depth())
}

fn run_fm_plan_case(name: &'static str, nest: &LoopNest) -> FmPlanCase {
    let (tsys, depth) = transformed_system(nest);
    let raw = LoopBounds::from_system_pruned(&tsys, Prune::None).expect("unpruned bounds");
    let pruned = LoopBounds::from_system(&tsys).expect("pruned bounds");
    let bounds_unpruned = best(FM_REPS, || {
        LoopBounds::from_system_pruned(&tsys, Prune::None)
            .unwrap()
            .dim()
    });
    let bounds_pruned = best(FM_REPS, || LoopBounds::from_system(&tsys).unwrap().dim());
    let plan_t = best(FM_REPS, || pdm_core::parallelize(nest).unwrap().depth());

    let plan = pdm_core::parallelize(nest).expect("plan");
    let mem = Memory::for_nest(nest).expect("alloc");
    let cplan = CompiledPlan::compile(nest, &plan, &mem).expect("compile");

    FmPlanCase {
        name,
        depth,
        rows_unpruned: raw.total_rows(),
        rows_pruned: pruned.total_rows(),
        compiled_rows: cplan.bound_rows(),
        bounds_unpruned,
        bounds_pruned,
        plan: plan_t,
    }
}

/// Elimination stats for one constraint system under each [`Prune`]
/// level: peak intermediate rows and wall time (times in seconds).
/// `fast` (the [`pdm_poly::fm::eliminate_all`] default) is the wall-time
/// configuration; `exact` minimizes the surviving rows.
pub struct FmElimCase {
    /// Case label.
    pub name: &'static str,
    /// Number of variables eliminated.
    pub depth: usize,
    /// Input constraint count.
    pub input_rows: usize,
    /// Stats of the unpruned baseline.
    pub unpruned: ElimStats,
    /// Stats of the Kohler-history run.
    pub fast: ElimStats,
    /// Stats of the exact-pruned run.
    pub exact: ElimStats,
    /// Wall time of the unpruned baseline.
    pub t_unpruned: f64,
    /// Wall time of the Kohler-history run.
    pub t_fast: f64,
    /// Wall time of the exact-pruned run.
    pub t_exact: f64,
}

fn run_fm_elim_case(name: &'static str, sys: &System) -> FmElimCase {
    let vars: Vec<usize> = (0..sys.dim()).collect();
    let (_, unpruned) = eliminate_all_stats(sys, &vars, Prune::None).expect("unpruned");
    let (_, fast) = eliminate_all_stats(sys, &vars, Prune::Fast).expect("fast");
    let (_, exact) = eliminate_all_stats(sys, &vars, Prune::Exact).expect("exact");
    let t_unpruned = best(FM_REPS, || {
        eliminate_all_stats(sys, &vars, Prune::None).unwrap().1
    });
    let t_fast = best(FM_REPS, || {
        eliminate_all_stats(sys, &vars, Prune::Fast).unwrap().1
    });
    let t_exact = best(FM_REPS, || {
        eliminate_all_stats(sys, &vars, Prune::Exact).unwrap().1
    });
    FmElimCase {
        name,
        depth: sys.dim(),
        input_rows: sys.len(),
        unpruned,
        fast,
        exact,
        t_unpruned,
        t_fast,
        t_exact,
    }
}

/// A skewed n-dimensional box: `0 ≤ x_k + x_{k−1} ≤ size` for every `k`.
pub fn skewed_box(n: usize, size: i64) -> System {
    let mut s = System::universe(n);
    for k in 0..n {
        let mut coeffs = vec![0i64; n];
        coeffs[k] = 1;
        if k > 0 {
            coeffs[k - 1] = 1;
        }
        s.add_ge0(AffineExpr::new(IVec(coeffs.clone()), 0)).unwrap();
        let neg: Vec<i64> = coeffs.iter().map(|c| -c).collect();
        s.add_ge0(AffineExpr::new(IVec(neg), size)).unwrap();
    }
    s
}

/// A random bounded deep system: a box plus `cuts` random affine cuts
/// with small coefficients — the shape FM blows up on.
pub fn random_deep_system(dim: usize, cuts: usize, seed: u64) -> System {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = System::universe(dim);
    for i in 0..dim {
        s.add_range(i, -6, 6).unwrap();
    }
    let mut added = 0usize;
    while added < cuts {
        let coeffs: Vec<i64> = (0..dim).map(|_| rng.gen_range(-2i64..=2)).collect();
        if coeffs.iter().all(|&c| c == 0) {
            continue;
        }
        let c = rng.gen_range(0i64..=10);
        s.add_ge0(AffineExpr::new(IVec(coeffs), c)).unwrap();
        added += 1;
    }
    s
}

/// The 4-deep sequential stencil used as the deep planning workload.
pub fn deep_stencil(n: i64) -> LoopNest {
    parse_loop_with(
        "for i = 1..N { for j = 1..N { for k = 1..N { for l = 1..N {
           A[i, j, k, l] = A[i - 1, j, k, l] + A[i, j - 1, k, l]
                         + A[i, j, k - 1, l] + A[i, j, k, l - 1];
         } } } }",
        &[("N", n)],
    )
    .expect("deep stencil parses")
}

/// Measure every FM case, printing one summary line per case.
pub fn fm_cases() -> (Vec<FmPlanCase>, Vec<FmElimCase>) {
    let plans = vec![
        run_fm_plan_case("paper41_n200", &paper41(0, 199)),
        run_fm_plan_case("paper42_n200", &paper42(0, 199)),
        run_fm_plan_case("stencil_n200", &stencil2d(200)),
        run_fm_plan_case("stencil4d_n8", &deep_stencil(8)),
    ];
    for c in &plans {
        println!(
            "{:<14} depth {}  bound rows {:>3} -> {:>3} ({:4.2}x)   bounds {:>8.1}us -> {:>8.1}us   plan {:>8.1}us",
            c.name,
            c.depth,
            c.rows_unpruned,
            c.rows_pruned,
            c.rows_unpruned as f64 / c.rows_pruned as f64,
            c.bounds_unpruned * 1e6,
            c.bounds_pruned * 1e6,
            c.plan * 1e6,
        );
    }
    let elims = vec![
        run_fm_elim_case("skewed_box_d4", &skewed_box(4, 40)),
        run_fm_elim_case("skewed_box_d6", &skewed_box(6, 40)),
        run_fm_elim_case("random_d4", &random_deep_system(4, 8, 7)),
        run_fm_elim_case("random_d5", &random_deep_system(5, 10, 11)),
        run_fm_elim_case("random_d6", &random_deep_system(6, 10, 5)),
    ];
    for c in &elims {
        println!(
            "{:<14} depth {}  peak rows {:>5} / fast {:>4} / exact {:>4} ({:6.2}x)   eliminate {:>9.1}us / {:>8.1}us / {:>9.1}us",
            c.name,
            c.depth,
            c.unpruned.peak_rows,
            c.fast.peak_rows,
            c.exact.peak_rows,
            c.unpruned.peak_rows as f64 / c.exact.peak_rows as f64,
            c.t_unpruned * 1e6,
            c.t_fast * 1e6,
            c.t_exact * 1e6,
        );
    }
    (plans, elims)
}

/// Serialize FM cases into the committed `BENCH_fm.json` shape. The FM
/// pipeline is sequential, so every case records `"threads": 1` — the
/// worker count it actually ran with.
pub fn fm_json(plans: &[FmPlanCase], elims: &[FmElimCase]) -> String {
    let mut out = String::from("{\n  \"bench\": \"fm_prune\",\n  \"plan_cases\": [\n");
    for (i, c) in plans.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"depth\": {}, \"threads\": 1, \
             \"rows_unpruned\": {}, \"rows_pruned\": {}, \"compiled_rows\": {}, \
             \"rows_reduction\": {:.3}, \
             \"bounds_unpruned_ms\": {:.4}, \"bounds_pruned_ms\": {:.4}, \
             \"plan_ms\": {:.4}, \"plans_per_s\": {:.0}}}{}\n",
            c.name,
            c.depth,
            c.rows_unpruned,
            c.rows_pruned,
            c.compiled_rows,
            c.rows_unpruned as f64 / c.rows_pruned as f64,
            c.bounds_unpruned * 1e3,
            c.bounds_pruned * 1e3,
            c.plan * 1e3,
            1.0 / c.plan,
            if i + 1 == plans.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"elim_cases\": [\n");
    for (i, c) in elims.iter().enumerate() {
        // The unpruned-vs-Fast timing ratio is the headline win, so gate
        // it (`_speedup`) wherever the unpruned run is long enough for
        // the ratio to be stable; µs-scale cases stay informational
        // (`_time_ratio`) — scheduler jitter would make them flake.
        let ratio_key = if c.t_unpruned >= 1e-3 {
            "elim_speedup"
        } else {
            "elim_time_ratio"
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"depth\": {}, \"threads\": 1, \"input_rows\": {}, \
             \"peak_unpruned\": {}, \"peak_fast\": {}, \"peak_exact\": {}, \
             \"peak_reduction\": {:.3}, \
             \"dropped_history\": {}, \"dropped_exact\": {}, \
             \"elim_unpruned_ms\": {:.4}, \"elim_fast_ms\": {:.4}, \"elim_exact_ms\": {:.4}, \
             \"{ratio_key}\": {:.3}}}{}\n",
            c.name,
            c.depth,
            c.input_rows,
            c.unpruned.peak_rows,
            c.fast.peak_rows,
            c.exact.peak_rows,
            c.unpruned.peak_rows as f64 / c.exact.peak_rows as f64,
            c.exact.dropped_history,
            c.exact.dropped_exact,
            c.t_unpruned * 1e3,
            c.t_fast * 1e3,
            c.t_exact * 1e3,
            c.t_unpruned / c.t_fast,
            if i + 1 == elims.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Group enumeration: streaming cursor vs. materialized cross product.
// ---------------------------------------------------------------------

/// One streaming-vs-materialized group-enumeration case (times in
/// seconds, peaks in live group structs).
pub struct GroupsCase {
    /// Case label (stable across runs; used as the JSON metric path).
    pub name: &'static str,
    /// Total independent groups.
    pub groups: u64,
    /// Building the full materialized group list once.
    pub t_materialize: f64,
    /// Streaming all groups through one cursor once (no materialization).
    pub t_stream: f64,
    /// Peak simultaneously-live group structs while materializing.
    pub peak_materialized: i64,
    /// Peak live group structs during a streaming compiled
    /// `run_parallel` (zero: the compiled path builds none).
    pub peak_stream_compiled: i64,
    /// Peak live group structs during a streaming interpreted
    /// `run_parallel` (one transient `GroupSpec` per in-flight range).
    pub peak_stream_interp: i64,
    /// Configured worker threads during the streaming runs.
    pub threads: usize,
    /// Workers the last streaming region actually used
    /// ([`rayon::last_region_threads`]).
    pub observed_threads: usize,
}

fn run_groups_case(name: &'static str, nest: &LoopNest) -> GroupsCase {
    use pdm_runtime::schedule::{
        group_count, peak_live_groups, reset_peak_live_groups, GroupCursor,
    };

    let plan = pdm_core::parallelize(nest).expect("plan");
    let num_offsets = plan.partition().map_or(1, |p| p.offsets().len());
    let z = plan.doall_count();
    let total = group_count(plan.bounds(), z, num_offsets).expect("count");

    let t_materialize = best(FM_REPS, || {
        pdm_runtime::exec::groups(&plan).expect("materialize").len()
    });
    let t_stream = best(FM_REPS, || {
        let mut cur = GroupCursor::new(plan.bounds(), z, num_offsets).expect("cursor");
        let mut n = 0u64;
        while cur.current().is_some() {
            n += 1;
            cur.advance().expect("advance");
        }
        n
    });

    reset_peak_live_groups();
    let base = pdm_runtime::schedule::live_groups();
    let gs = pdm_runtime::exec::groups(&plan).expect("materialize");
    assert_eq!(gs.len() as u64, total);
    let peak_materialized = peak_live_groups() - base;
    drop(gs);

    let mem = Memory::for_nest(nest).expect("alloc");
    let cp = CompiledPlan::compile(nest, &plan, &mem).expect("compile");
    reset_peak_live_groups();
    let ran = cp.run_parallel(&mem).expect("compiled run");
    let peak_stream_compiled = peak_live_groups() - base;
    reset_peak_live_groups();
    let ran_i = pdm_runtime::run_parallel(nest, &plan, &mem).expect("interp run");
    let peak_stream_interp = peak_live_groups() - base;
    assert_eq!(ran, ran_i, "executors disagreed on iteration count");

    GroupsCase {
        name,
        groups: total,
        t_materialize,
        t_stream,
        peak_materialized,
        peak_stream_compiled,
        peak_stream_interp,
        threads: rayon::current_num_threads(),
        observed_threads: rayon::last_region_threads(),
    }
}

/// A depth-4 all-doall nest with `n⁴` groups — the allocation-spike
/// workload of the acceptance test (`n = 18` gives 104 976 groups).
pub fn doall4(n: i64) -> LoopNest {
    parse_loop_with(
        "for a = 0..N { for b = 0..N { for c = 0..N { for d = 0..N {
           A[a, b, c, d] = a + 2*b + 3*c + d;
         } } } }",
        &[("N", n)],
    )
    .expect("doall4 parses")
}

/// A triangular all-doall nest — exercises the prefix-dependent
/// cursor-walk counting and seek fallbacks.
pub fn doall_triangle(n: i64) -> LoopNest {
    parse_loop_with(
        "for i = 0..=N { for j = 0..=i { A[i, j] = i + j; } }",
        &[("N", n)],
    )
    .expect("triangle parses")
}

/// Measure every group-enumeration case, printing one summary line each.
pub fn groups_cases() -> Vec<GroupsCase> {
    let cases = vec![
        run_groups_case("doall4_n18", &doall4(18)),
        run_groups_case("tri_n120", &doall_triangle(120)),
        run_groups_case("paper41_n200", &paper41(0, 199)),
    ];
    for c in &cases {
        println!(
            "{:<14} groups {:>7}  enum {:>11.0} -> {:>11.0} groups/s ({:4.1}x)   peak live {:>7} -> {} (compiled) / {} (interp, {} threads)",
            c.name,
            c.groups,
            c.groups as f64 / c.t_materialize,
            c.groups as f64 / c.t_stream,
            c.t_materialize / c.t_stream,
            c.peak_materialized,
            c.peak_stream_compiled,
            c.peak_stream_interp,
            c.threads,
        );
    }
    cases
}

/// Serialize group-enumeration cases into the committed
/// `BENCH_groups.json` shape. Every case records the worker-thread
/// count its streaming runs actually used.
pub fn groups_json(cases: &[GroupsCase]) -> String {
    let mut out = String::from("{\n  \"bench\": \"group_enumeration\",\n");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.push_str(&format!(
        "  \"machine_threads\": {threads},\n  \"cases\": [\n"
    ));
    for (i, c) in cases.iter().enumerate() {
        // Peak-live reduction is deterministic (the compiled streaming
        // path constructs zero group structs, so the denominator clamps
        // to 1 and the ratio equals the group count) — gate it with the
        // tight count tolerance. The enumeration timing ratio is gated
        // (`_speedup`, wide timing tolerance) only on cases big enough
        // for the walk to be measurably long on any host; the key choice
        // must be a *deterministic* function of the workload (group
        // count), never of measured time — a measurement-dependent key
        // would make the committed gated metric vanish on a faster
        // machine and fail `bench_check` with no real regression.
        let ratio = c.t_materialize / c.t_stream;
        let ratio_key = if c.groups >= 10_000 {
            "enum_speedup"
        } else {
            "enum_time_ratio"
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"groups\": {}, \
             \"threads\": {}, \"observed_threads\": {}, \
             \"enum_materialized_per_s\": {:.0}, \"enum_stream_per_s\": {:.0}, \
             \"{ratio_key}\": {:.3}, \
             \"peak_live_materialized\": {}, \"peak_live_streaming\": {}, \
             \"peak_live_interp_stream\": {}, \
             \"peak_live_reduction\": {:.3}}}{}\n",
            c.name,
            c.groups,
            c.threads,
            c.observed_threads,
            c.groups as f64 / c.t_materialize,
            c.groups as f64 / c.t_stream,
            ratio,
            c.peak_materialized,
            c.peak_stream_compiled,
            c.peak_stream_interp,
            c.peak_materialized as f64 / (c.peak_stream_compiled.max(1)) as f64,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Plan templates: instantiate vs. replan.
// ---------------------------------------------------------------------

/// Instantiations per timed batch: one instantiate is microseconds, so a
/// single-call sample would be mostly timer overhead.
const INSTANTIATE_BATCH: usize = 64;

/// One instantiate-vs-replan case (times in seconds, per single plan).
pub struct TemplateCase {
    /// Case label (stable across runs; used as the JSON metric path).
    pub name: &'static str,
    /// Nest depth.
    pub depth: usize,
    /// Planning the template once (symbolic analysis + parametric FM).
    pub template_once: f64,
    /// The concrete path per size: full `parallelize` on the pre-parsed
    /// concrete nest (dependence testing + FM + plan construction).
    pub replan: f64,
    /// The template path per size: `PlanTemplate::instantiate` (affine
    /// bound-row evaluation + structure clones; no FM, no analysis).
    pub instantiate: f64,
}

fn run_template_case(name: &'static str, src: &str, n: i64) -> TemplateCase {
    use pdm_core::template::plan_template;
    use pdm_loopir::parse::parse_loop_symbolic;

    let shape = parse_loop_symbolic(src, &["N"]).expect("symbolic parse");
    let template = plan_template(&shape).expect("template");
    let conc = parse_loop_with(src, &[("N", n)]).expect("concrete parse");

    // Refuse to time a divergent pair: the instantiated plan must agree
    // with fresh planning on structure and on the transformed space.
    let inst = template.instantiate(&[("N", n)]).expect("instantiate");
    let fresh = pdm_core::parallelize(&conc).expect("plan");
    assert_eq!(inst.transform(), fresh.transform(), "{name}: transform");
    assert_eq!(inst.doall_count(), fresh.doall_count(), "{name}: doall");
    assert_eq!(
        inst.partition_count(),
        fresh.partition_count(),
        "{name}: partitions"
    );
    assert_eq!(
        inst.bounds().enumerate().expect("inst space"),
        fresh.bounds().enumerate().expect("fresh space"),
        "{name}: transformed iteration space diverged — refusing to time"
    );

    let template_once = best(FM_REPS, || plan_template(&shape).unwrap().depth());
    let replan = best(RUNTIME_REPS, || {
        pdm_core::parallelize(&conc).unwrap().depth()
    });
    let instantiate = best(RUNTIME_REPS, || {
        let mut d = 0usize;
        for _ in 0..INSTANTIATE_BATCH {
            d = template.instantiate(&[("N", n)]).unwrap().depth();
        }
        d
    }) / INSTANTIATE_BATCH as f64;

    TemplateCase {
        name,
        depth: shape.depth(),
        template_once,
        replan,
        instantiate,
    }
}

/// Symbolic sources of the template cases (`N` is the one parameter).
const PAPER41_SYM: &str = "for i1 = 0..N { for i2 = 0..N {
   A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
 } }";
const PAPER42_SYM: &str = "for i1 = 0..N { for i2 = 0..N {
   A[i1, 3*i2 + 2] = B[i1, i2] + 1;
   B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
 } }";
const STENCIL_SYM: &str = "for i = 1..N { for j = 1..N {
   A[i, j] = A[i - 1, j] + A[i, j - 1];
 } }";
const STENCIL4D_SYM: &str = "for i = 1..N { for j = 1..N { for k = 1..N { for l = 1..N {
   A[i, j, k, l] = A[i - 1, j, k, l] + A[i, j - 1, k, l]
                 + A[i, j, k - 1, l] + A[i, j, k, l - 1];
 } } } }";

/// Measure every template case, printing one summary line per case.
pub fn template_cases() -> Vec<TemplateCase> {
    let cases = vec![
        run_template_case("paper41_n64", PAPER41_SYM, 64),
        run_template_case("paper41_n200", PAPER41_SYM, 200),
        run_template_case("paper42_n200", PAPER42_SYM, 200),
        run_template_case("stencil_n200", STENCIL_SYM, 200),
        run_template_case("stencil4d_n8", STENCIL4D_SYM, 8),
    ];
    for c in &cases {
        println!(
            "{:<14} depth {}  template once {:>8.1}us   replan {:>8.1}us -> instantiate {:>7.2}us ({:6.1}x)",
            c.name,
            c.depth,
            c.template_once * 1e6,
            c.replan * 1e6,
            c.instantiate * 1e6,
            c.replan / c.instantiate,
        );
    }
    cases
}

/// Serialize template cases into the committed `BENCH_template.json`
/// shape. `template_instantiate_speedup` (replan ÷ instantiate, both
/// measured on the same host in the same run) is the gated metric.
/// Planning and instantiation are sequential, so every case records
/// `"threads": 1` — the worker count it actually ran with.
pub fn template_json(cases: &[TemplateCase]) -> String {
    let mut out = String::from("{\n  \"bench\": \"plan_template\",\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"depth\": {}, \"threads\": 1, \
             \"template_once_ms\": {:.4}, \"replan_ms\": {:.4}, \
             \"instantiate_ms\": {:.5}, \"instantiates_per_s\": {:.0}, \
             \"template_instantiate_speedup\": {:.2}}}{}\n",
            c.name,
            c.depth,
            c.template_once * 1e3,
            c.replan * 1e3,
            c.instantiate * 1e3,
            1.0 / c.instantiate,
            c.replan / c.instantiate,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Imperfect nests: normalized staged execution vs. whole-nest reference.
// ---------------------------------------------------------------------

/// One imperfect-nest case (times in seconds). The headline ratio —
/// fissioned/normalized **compiled staged-parallel** execution vs. the
/// **whole-nest sequential** reference interpreter — is the end-to-end
/// win a user gets from normalization + compilation together, measured
/// on the same host in the same run (`imperfect_speedup`, gated).
pub struct ImperfectCase {
    /// Case label (stable across runs; used as the JSON metric path).
    pub name: &'static str,
    /// Kernels after normalization.
    pub kernels: usize,
    /// Barriers in the staged schedule (DAG stage boundaries).
    pub barriers: usize,
    /// Statement executions of the reference walk.
    pub stmt_execs: u64,
    /// Whole-nest sequential reference (imperfect interpreter).
    pub t_reference: f64,
    /// Fissioned kernels in order, interpreted sequentially.
    pub t_fission_seq: f64,
    /// Staged compiled-parallel execution.
    pub t_compiled_par: f64,
    /// Configured worker threads during the staged-parallel runs.
    pub threads: usize,
    /// Workers the last stage region actually used
    /// ([`rayon::last_region_threads`]).
    pub observed_threads: usize,
}

fn run_imperfect_case(name: &'static str, src: &str) -> ImperfectCase {
    use pdm_loopir::parse::parse_imperfect;
    use pdm_runtime::staged;

    let imp = parse_imperfect(src).expect("imperfect source parses");
    let pp = pdm_core::program::parallelize_program(&imp).expect("program plan");
    // Refuse to time a divergent pipeline.
    let rep = pdm_runtime::equivalence::compare_program(&imp, &pp, 1).expect("execute");
    assert!(
        rep.all_equal(),
        "{name}: executors diverged — refusing to time"
    );

    let mut mem = Memory::for_imperfect(&imp).expect("alloc");
    mem.init_deterministic(1);
    let t_reference = best(RUNTIME_REPS, || {
        staged::run_imperfect_sequential(&imp, &mem).unwrap()
    });
    let t_fission_seq = best(RUNTIME_REPS, || {
        staged::run_program_sequential(&pp, &mem).unwrap()
    });
    let compiled = staged::CompiledProgram::compile(&pp, &mem).expect("compile");
    let t_compiled_par = best(RUNTIME_REPS, || compiled.run_parallel(&mem).unwrap());

    ImperfectCase {
        name,
        kernels: pp.kernel_count(),
        barriers: pp.barrier_count(),
        stmt_execs: rep.reference_stmts,
        t_reference,
        t_fission_seq,
        t_compiled_par,
        threads: rayon::current_num_threads(),
        observed_threads: rayon::last_region_threads(),
    }
}

/// The LU-style nest of `examples/imperfect_lu.rs` at size `n`
/// (statements at three depths; normalization must sink).
pub fn imperfect_lu_src(n: i64) -> String {
    format!(
        "for k = 0..={kmax} {{
           A[k, k] = A[k, k] + 1;
           for i = k + 1..={imax} {{
             A[i, k] = A[i, k] * A[k, k];
             for j = k + 1..={imax} {{
               A[i, j] = A[i, j] - A[i, k] * A[k, j];
             }}
           }}
         }}",
        kmax = n - 2,
        imax = n - 1,
    )
}

/// A row-recurrence with an initialization prologue: normalization
/// fissions it into an init kernel plus a row kernel whose outer loop is
/// doall — the shape where staged parallelism pays.
pub fn imperfect_rowinit_src(n: i64) -> String {
    format!(
        "for i = 0..={n} {{
           B[i, 0] = i;
           for j = 1..={n} {{ A[i, j] = A[i, j - 1] + B[i, 0]; }}
         }}"
    )
}

/// Measure every imperfect case, printing one summary line per case.
pub fn imperfect_cases() -> Vec<ImperfectCase> {
    let lu = imperfect_lu_src(72);
    let rowinit = imperfect_rowinit_src(480);
    let cases = vec![
        run_imperfect_case("lu_n72", &lu),
        run_imperfect_case("rowinit_n480", &rowinit),
    ];
    for c in &cases {
        println!(
            "{:<14} kernels {} barriers {}  ref {:>9.0} stmts/s  fission-seq {:>9.0}  compiled-par {:>9.0} ({:4.1}x)",
            c.name,
            c.kernels,
            c.barriers,
            c.stmt_execs as f64 / c.t_reference,
            c.stmt_execs as f64 / c.t_fission_seq,
            c.stmt_execs as f64 / c.t_compiled_par,
            c.t_reference / c.t_compiled_par,
        );
    }
    cases
}

/// Serialize imperfect cases into the committed `BENCH_imperfect.json`
/// shape. `imperfect_speedup` (reference ÷ compiled staged-parallel,
/// same host, same run) is the gated metric. Every case records the
/// worker-thread count its staged runs actually used.
pub fn imperfect_json(cases: &[ImperfectCase]) -> String {
    let mut out = String::from("{\n  \"bench\": \"imperfect_nests\",\n");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.push_str(&format!(
        "  \"machine_threads\": {threads},\n  \"cases\": [\n"
    ));
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"kernels\": {}, \"barriers\": {}, \
             \"threads\": {}, \"observed_threads\": {}, \
             \"stmt_execs\": {}, \
             \"reference_stmts_per_s\": {:.0}, \"fission_seq_stmts_per_s\": {:.0}, \
             \"compiled_par_stmts_per_s\": {:.0}, \
             \"imperfect_speedup\": {:.3}}}{}\n",
            c.name,
            c.kernels,
            c.barriers,
            c.threads,
            c.observed_threads,
            c.stmt_execs,
            c.stmt_execs as f64 / c.t_reference,
            c.stmt_execs as f64 / c.t_fission_seq,
            c.stmt_execs as f64 / c.t_compiled_par,
            c.t_reference / c.t_compiled_par,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Thread scaling: work-stealing vs. contiguous splitting.
// ---------------------------------------------------------------------

/// Best-of repetitions for the scaling ladder.
pub const SCALING_REPS: usize = 5;

/// One pool width of a scaling ladder (times in seconds).
pub struct ScalingPoint {
    /// Configured pool width.
    pub threads: usize,
    /// Workers the interpreted region actually used.
    pub observed_interp: usize,
    /// Workers the compiled region actually used.
    pub observed_compiled: usize,
    /// Cross-deque steals in the last compiled region
    /// ([`rayon::last_region_steals`]).
    pub steals_compiled: usize,
    /// Interpreted parallel execution at this width.
    pub t_interp: f64,
    /// Compiled parallel execution at this width.
    pub t_compiled: f64,
}

/// One workload of the thread-scaling bench: the same nest executed on
/// a 1 → `max_threads` pool ladder (default steal-aware schedule), plus
/// a stealing-vs-contiguous duel at the widest pool.
pub struct ScalingCase {
    /// Case label (stable across runs; used as the JSON metric path).
    pub name: &'static str,
    /// Whether the group space is [`cost_skewed`] (drives the gate key).
    pub skewed: bool,
    /// Iterations per full execution.
    pub iterations: u64,
    /// The ladder, one point per pool width.
    pub points: Vec<ScalingPoint>,
    /// Widest pool measured (the duel runs at this width).
    pub max_threads: usize,
    /// Compiled at `max_threads` with one coarse range per worker
    /// (`chunks_per_thread = 1`) — the contiguous baseline that starves
    /// stealing: each worker owns exactly one chunk.
    pub t_contiguous: f64,
    /// Compiled at `max_threads` with the default steal-aware schedule.
    pub t_stealing: f64,
    /// Steals observed in the last contiguous-schedule region.
    pub steals_contiguous: usize,
    /// Steals observed in the last steal-aware region.
    pub steals_stealing: usize,
}

/// Balanced rectangular row recurrence: every outer (doall) row costs
/// the same, so coarse contiguous chunks are already load-balanced.
pub fn scaling_balanced(n: i64) -> LoopNest {
    parse_loop_with(
        "for i = 0..N { for j = 1..N { A[i, j] = A[i, j - 1] + 1; } }",
        &[("N", n)],
    )
    .expect("balanced scaling nest parses")
}

/// Skewed triangular row recurrence: row `i` costs `O(i)`, so a
/// contiguous row split hands the last worker most of the work — the
/// shape where steal-aware chunking pays.
pub fn scaling_skewed(n: i64) -> LoopNest {
    parse_loop_with(
        "for i = 0..=N { for j = 1..=i { A[i, j] = A[i, j - 1] + 1; } }",
        &[("N", n)],
    )
    .expect("skewed scaling nest parses")
}

/// The pool ladder: serial, minimal parallelism, and `max(4, machine)`.
fn scaling_ladder() -> Vec<usize> {
    let machine = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut ladder = vec![1, 2, machine.max(4)];
    ladder.dedup();
    ladder
}

fn run_scaling_case(name: &'static str, nest: &LoopNest, expect_skewed: bool) -> ScalingCase {
    let plan = pdm_core::parallelize(nest).expect("plan");
    let z = plan.doall_count();
    assert_eq!(
        cost_skewed(plan.bounds(), z),
        expect_skewed,
        "{name}: workload skew does not match the case design"
    );
    let rep = compare_three_way(nest, &plan, 1).expect("execute");
    assert!(
        rep.all_equal(),
        "{name}: executors diverged — refusing to time"
    );
    let iterations = rep.iterations;

    let mut m = Memory::for_nest(nest).expect("alloc");
    m.init_deterministic(1);
    let cplan = CompiledPlan::compile(nest, &plan, &m).expect("compile plan");

    let mut points = Vec::new();
    for threads in scaling_ladder() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let t_interp = best(SCALING_REPS, || {
            pool.install(|| pdm_runtime::run_parallel(nest, &plan, &m).unwrap())
        });
        // `install` runs inline, so the region gauge of the last rep is
        // still on this thread.
        let observed_interp = rayon::last_region_threads();
        let t_compiled = best(SCALING_REPS, || {
            pool.install(|| cplan.run_parallel(&m).unwrap())
        });
        let observed_compiled = rayon::last_region_threads();
        let steals_compiled = rayon::last_region_steals();
        points.push(ScalingPoint {
            threads,
            observed_interp,
            observed_compiled,
            steals_compiled,
            t_interp,
            t_compiled,
        });
    }

    // The duel: same compiled engine, same (widest) pool — only the
    // range split differs. One coarse chunk per worker leaves thieves
    // nothing to take; the steal-aware default splits skewed spaces
    // finer so idle workers relieve whoever drew the fat end.
    let max_threads = *scaling_ladder().last().expect("ladder");
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(max_threads)
        .build()
        .expect("pool");
    let contiguous = Schedule {
        chunks_per_thread: 1,
        steal_chunks_per_thread: 1,
    };
    let t_contiguous = best(SCALING_REPS, || {
        pool.install(|| cplan.run_parallel_scheduled(&m, contiguous).unwrap())
    });
    let steals_contiguous = rayon::last_region_steals();
    let t_stealing = best(SCALING_REPS, || {
        pool.install(|| {
            cplan
                .run_parallel_scheduled(&m, Schedule::default())
                .unwrap()
        })
    });
    let steals_stealing = rayon::last_region_steals();

    ScalingCase {
        name,
        skewed: expect_skewed,
        iterations,
        points,
        max_threads,
        t_contiguous,
        t_stealing,
        steals_contiguous,
        steals_stealing,
    }
}

/// Measure every scaling case, printing one summary line per point.
pub fn scaling_cases() -> Vec<ScalingCase> {
    let balanced = scaling_balanced(400);
    let skewed = scaling_skewed(560);
    let cases = vec![
        run_scaling_case("balanced_n400", &balanced, false),
        run_scaling_case("skewed_n560", &skewed, true),
    ];
    for c in &cases {
        for p in &c.points {
            println!(
                "{:<14} t={:<2} (observed {}/{}, {} steals)  interp {:>11.0} iters/s   compiled {:>11.0} iters/s",
                c.name,
                p.threads,
                p.observed_interp,
                p.observed_compiled,
                p.steals_compiled,
                c.iterations as f64 / p.t_interp,
                c.iterations as f64 / p.t_compiled,
            );
        }
        println!(
            "{:<14} duel@t={}: contiguous {:>11.0} -> stealing {:>11.0} iters/s ({:4.2}x, {} -> {} steals)",
            c.name,
            c.max_threads,
            c.iterations as f64 / c.t_contiguous,
            c.iterations as f64 / c.t_stealing,
            c.t_contiguous / c.t_stealing,
            c.steals_contiguous,
            c.steals_stealing,
        );
    }
    cases
}

/// Serialize scaling cases into the committed `BENCH_scaling.json`
/// shape: one entry per (case, pool width) with configured and observed
/// thread counts, plus one summary entry per case carrying the gated
/// stealing-vs-contiguous ratio (`skewed_scaling_speedup` /
/// `balanced_scaling_speedup` — both factors measured on the same host
/// at the same pool width, so the ratio transfers across machines; on a
/// single-core host both legs serialize and the ratio sits at ~1).
pub fn scaling_json(cases: &[ScalingCase]) -> String {
    let mut out = String::from("{\n  \"bench\": \"thread_scaling\",\n");
    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.push_str(&format!(
        "  \"machine_threads\": {machine},\n  \"cases\": [\n"
    ));
    for (ci, c) in cases.iter().enumerate() {
        for p in &c.points {
            out.push_str(&format!(
                "    {{\"name\": \"{}_t{}\", \"threads\": {}, \
                 \"observed_interp_threads\": {}, \"observed_compiled_threads\": {}, \
                 \"observed_compiled_steals\": {}, \
                 \"interp_iters_per_s\": {:.0}, \"compiled_iters_per_s\": {:.0}}},\n",
                c.name,
                p.threads,
                p.threads,
                p.observed_interp,
                p.observed_compiled,
                p.steals_compiled,
                c.iterations as f64 / p.t_interp,
                c.iterations as f64 / p.t_compiled,
            ));
        }
        let gate_key = if c.skewed {
            "skewed_scaling_speedup"
        } else {
            "balanced_scaling_speedup"
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iterations\": {}, \"cost_skewed\": {}, \
             \"threads\": {}, \
             \"contiguous_steals\": {}, \"stealing_steals\": {}, \
             \"contiguous_iters_per_s\": {:.0}, \"stealing_iters_per_s\": {:.0}, \
             \"{gate_key}\": {:.3}}}{}\n",
            c.name,
            c.iterations,
            if c.skewed { 1 } else { 0 },
            c.max_threads,
            c.steals_contiguous,
            c.steals_stealing,
            c.iterations as f64 / c.t_contiguous,
            c.iterations as f64 / c.t_stealing,
            c.t_contiguous / c.t_stealing,
            if ci + 1 == cases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Plan-serving service: zipf request storm over the wire.
// ---------------------------------------------------------------------

/// Distinct nest shapes in the service storm (one template each).
pub const SERVICE_SHAPES: usize = 64;
/// Concurrent client connections in the storm.
pub const SERVICE_CLIENTS: usize = 4;
/// Requests per client (seeding plans + zipf-mixed follow-ups).
pub const SERVICE_REQUESTS_PER_CLIENT: usize = 1000;
/// Zipf exponent of the shape popularity distribution.
const SERVICE_ZIPF_S: f64 = 1.1;

/// One plan-serving storm (times in seconds; counters from the server's
/// shared cache).
pub struct ServiceCase {
    /// Case label (stable across runs; used as the JSON metric path).
    pub name: &'static str,
    /// Concurrent client connections.
    pub clients: usize,
    /// Distinct shapes requested.
    pub shapes: usize,
    /// Pool workers serving (acceptor + handlers).
    pub workers: usize,
    /// Total wire requests issued.
    pub requests: u64,
    /// Requests answered `"ok": false`.
    pub errors: u64,
    /// Wall time of the whole storm (connect → last response).
    pub elapsed: f64,
    /// Cache hits across the storm.
    pub hits: u64,
    /// Planning runs (must equal `shapes`: single-flight dedup).
    pub planned: u64,
    /// Requests that waited on another connection's in-flight plan.
    pub waited: u64,
    /// Warm template acquisition through the session cache, per call.
    pub t_acquire: f64,
    /// Fresh symbolic planning of the same shape, per call.
    pub t_replan: f64,
}

/// The `idx`-th storm shape: a 1-D recurrence whose constant dependence
/// distance (`idx + 2`) varies the structural hash — 64 sources, 64
/// distinct templates, all cheap to plan and to run.
pub fn service_shape_source(idx: usize) -> String {
    format!("for i = 1..=N {{ A[i + {d}] = A[i] + 1; }}", d = idx + 2)
}

/// Deterministic zipf sampler over `0..n` (popularity rank order):
/// inverse-CDF over precomputed weights, driven by splitmix64 draws.
struct Zipf {
    cdf: Vec<f64>,
    rng: StdRng,
}

impl Zipf {
    fn new(n: usize, s: f64, seed: u64) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        Zipf {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn draw(&mut self) -> usize {
        let u = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let target = u * self.cdf.last().copied().unwrap_or(1.0);
        self.cdf.iter().position(|&c| c >= target).unwrap_or(0)
    }
}

/// One storm client: seed every shape with a `plan` request (exercising
/// single-flight dedup — all clients race on all shapes), then issue
/// zipf-mixed `instantiate` / `plan` / `run` requests by hash. Returns
/// `(requests, errors)`.
fn service_client(
    addr: std::net::SocketAddr,
    seed: u64,
    total: usize,
) -> Result<(u64, u64), pdm_service::PdmError> {
    use pdm_service::ServiceClient;

    let mut client = ServiceClient::connect(addr)?;
    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut hashes = vec![String::new(); SERVICE_SHAPES];
    let mut call = |client: &mut ServiceClient, req: &str| {
        let resp = client.call(req)?;
        requests += 1;
        if resp.get("ok") != Some(&pdm_service::json::Json::Bool(true)) {
            errors += 1;
        }
        Ok::<_, pdm_service::PdmError>(resp)
    };

    for (idx, hash) in hashes.iter_mut().enumerate() {
        let src = service_shape_source(idx);
        let resp = call(
            &mut client,
            &format!(r#"{{"op":"plan","source":{},"params":["N"]}}"#, quote(&src)),
        )?;
        *hash = resp.get_str("shape_hash").unwrap_or_default().to_string();
    }

    let mut zipf = Zipf::new(SERVICE_SHAPES, SERVICE_ZIPF_S, seed);
    for r in 0..total.saturating_sub(SERVICE_SHAPES) {
        let idx = zipf.draw();
        let hash = &hashes[idx];
        let req = match r % 10 {
            // Mostly instantiations — the serving fast path.
            0..=5 => format!(r#"{{"op":"instantiate","shape_hash":"{hash}","values":{{"N":64}}}}"#),
            // Re-plans by source: the cache answers, nothing re-plans.
            6..=8 => {
                let src = service_shape_source(idx);
                format!(r#"{{"op":"plan","source":{},"params":["N"]}}"#, quote(&src))
            }
            // Occasional full runs (instantiate + execute).
            _ => format!(r#"{{"op":"run","shape_hash":"{hash}","values":{{"N":24}},"seed":1}}"#),
        };
        call(&mut client, &req)?;
    }
    Ok((requests, errors))
}

fn quote(s: &str) -> String {
    pdm_service::json::render(&pdm_service::json::Json::Str(s.to_string()))
}

/// Run the zipf storm against a freshly bound server and measure
/// acquisition-vs-replan on the same session afterwards.
pub fn service_cases() -> Vec<ServiceCase> {
    use pdm_core::template::plan_template;
    use pdm_loopir::parse::parse_loop_symbolic;
    use pdm_service::{PlanServer, Session};
    use std::sync::Arc;

    let workers = SERVICE_CLIENTS + 2;
    let session = Arc::new(
        Session::builder()
            .cache_capacity(8, 16) // 128 slots ≥ 64 shapes: no evictions
            .threads(1)
            .build(),
    );
    let server =
        PlanServer::bind("127.0.0.1:0", Arc::clone(&session), workers).expect("bind service");
    let addr = server.local_addr().expect("local addr");
    let serve = std::thread::spawn(move || server.serve().expect("serve"));

    let t0 = std::time::Instant::now();
    let clients: Vec<_> = (0..SERVICE_CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                service_client(addr, 0x5eed + c as u64, SERVICE_REQUESTS_PER_CLIENT)
            })
        })
        .collect();
    let mut requests = 0u64;
    let mut errors = 0u64;
    for c in clients {
        let (r, e) = c.join().expect("client thread").expect("client io");
        requests += r;
        errors += e;
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let stats = session.cache_stats();
    pdm_service::ServiceClient::connect(addr)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown");
    serve.join().expect("server thread");

    // The serving win, in-process: warm cache acquisition vs. planning
    // the same shape from scratch, both on this host in this run. Both
    // legs are batched so single-call timer jitter cannot move the
    // gated ratio.
    let shape = parse_loop_symbolic(&service_shape_source(0), &["N"]).expect("parse");
    let t_replan = best(RUNTIME_REPS, || {
        let mut d = 0usize;
        for _ in 0..INSTANTIATE_BATCH {
            d = plan_template(&shape).unwrap().depth();
        }
        d
    }) / INSTANTIATE_BATCH as f64;
    let t_acquire = best(RUNTIME_REPS, || {
        let mut d = 0usize;
        for _ in 0..INSTANTIATE_BATCH {
            d = session.plan(&shape).unwrap().depth();
        }
        d
    }) / INSTANTIATE_BATCH as f64;

    let cases = vec![ServiceCase {
        name: "zipf64_c4",
        clients: SERVICE_CLIENTS,
        shapes: SERVICE_SHAPES,
        workers,
        requests,
        errors,
        elapsed,
        hits: stats.hits,
        planned: stats.planned,
        waited: stats.waited,
        t_acquire,
        t_replan,
    }];
    for c in &cases {
        println!(
            "{:<14} {} clients x {} reqs in {:.2}s = {:>7.0} req/s   planned {} hits {} waited {} errors {}   acquire {:.2}us vs replan {:.1}us ({:.0}x)",
            c.name,
            c.clients,
            c.requests / c.clients as u64,
            c.elapsed,
            c.requests as f64 / c.elapsed,
            c.planned,
            c.hits,
            c.waited,
            c.errors,
            c.t_acquire * 1e6,
            c.t_replan * 1e6,
            c.t_replan / c.t_acquire,
        );
    }
    cases
}

/// Serialize service cases into the committed `BENCH_service.json`
/// shape. Gated: `replan_reduction` (requests per planning run — fully
/// deterministic: fixed zipf seeds, single-flight guarantees one plan
/// per shape) and `service_vs_replan_speedup` (warm acquisition vs.
/// fresh planning, both timed on the same host in the same run).
/// `service_throughput_per_s` is absolute and gated only under
/// `BENCH_CHECK_STRICT=1`.
pub fn service_json(cases: &[ServiceCase]) -> String {
    let mut out = String::from("{\n  \"bench\": \"plan_service\",\n");
    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.push_str(&format!(
        "  \"machine_threads\": {machine},\n  \"cases\": [\n"
    ));
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"clients\": {}, \"shapes\": {}, \"threads\": {}, \
             \"requests\": {}, \"errors\": {}, \
             \"service_throughput_per_s\": {:.0}, \
             \"cache_hits\": {}, \"cache_planned\": {}, \"cache_waited\": {}, \
             \"hit_rate\": {:.4}, \"replan_reduction\": {:.2}, \
             \"acquire_us\": {:.3}, \"replan_us\": {:.1}, \
             \"service_vs_replan_speedup\": {:.1}}}{}\n",
            c.name,
            c.clients,
            c.shapes,
            c.workers,
            c.requests,
            c.errors,
            c.requests as f64 / c.elapsed,
            c.hits,
            c.planned,
            c.waited,
            c.hits as f64 / (c.hits + c.planned + c.waited).max(1) as f64,
            c.requests as f64 / c.planned.max(1) as f64,
            c.t_acquire * 1e6,
            c.t_replan * 1e6,
            c.t_replan / c.t_acquire,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Fault-hardening: storms with probes disarmed, armed-at-zero, firing.
// ---------------------------------------------------------------------

/// Requests per client in the hardening storms (three storms run back
/// to back, so each is smaller than the main service storm).
pub const FAULT_REQUESTS_PER_CLIENT: usize = 300;

/// Every probe armed at probability zero: the full bookkeeping cost of
/// the fault layer with no fault ever firing — the fault-free overhead
/// the `service_hardened_overhead` gate bounds.
pub const ARMED_ZERO_SPEC: &str =
    "plan.leader:0,server.handler:0,wire.torn:0,wire.delay:0,net.drop:0";

/// Probabilistic probes for the resilience leg: enough failures to
/// prove recovery, capped so the storm terminates briskly.
pub const FAULT_STORM_SPEC: &str = "server.handler:0.02:40,wire.torn:0.01:20,net.drop:0.01:20";

/// One fault-hardening measurement: two clean storms (probes disarmed
/// vs. armed-at-zero) for the overhead ratio, plus a faulting storm
/// that must complete with the server still serving.
pub struct FaultsCase {
    /// Case label (stable; the JSON metric path).
    pub name: &'static str,
    /// Clean-storm throughput with no probes compiled-in armed.
    pub baseline_per_s: f64,
    /// Clean-storm throughput with every probe armed at probability 0.
    pub armed_per_s: f64,
    /// Requests in the faulting storm.
    pub fault_requests: u64,
    /// In-band error responses in the faulting storm.
    pub fault_errors: u64,
    /// Client reconnects forced by dropped/torn connections.
    pub fault_reconnects: u64,
    /// Handler panics caught by the region sink.
    pub fault_panics: u64,
    /// Faulting-storm throughput (context only; retries inflate time).
    pub fault_per_s: f64,
}

impl FaultsCase {
    /// Armed-at-zero throughput over disarmed throughput — `1.0` means
    /// the hardening layer is free when faults are off; the snapshot
    /// gate keeps this from silently decaying.
    pub fn hardened_overhead(&self) -> f64 {
        self.armed_per_s / self.baseline_per_s
    }
}

/// One clean storm against a dedicated server; returns requests/sec.
fn clean_storm(faults: pdm_service::Faults) -> f64 {
    use pdm_service::{PlanServer, Session};
    use std::sync::Arc;

    let session = Arc::new(
        Session::builder()
            .cache_capacity(8, 16)
            .threads(1)
            .faults(faults)
            .build(),
    );
    let server = PlanServer::bind("127.0.0.1:0", Arc::clone(&session), SERVICE_CLIENTS + 2)
        .expect("bind faults bench");
    let addr = server.local_addr().expect("local addr");
    let serve = std::thread::spawn(move || server.serve().expect("serve"));

    let t0 = std::time::Instant::now();
    let clients: Vec<_> = (0..SERVICE_CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                service_client(addr, 0xfa17 + c as u64, FAULT_REQUESTS_PER_CLIENT)
            })
        })
        .collect();
    let mut requests = 0u64;
    for c in clients {
        let (r, e) = c.join().expect("client thread").expect("client io");
        assert_eq!(e, 0, "clean storm produced error responses");
        requests += r;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    pdm_service::ServiceClient::connect(addr)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown");
    serve.join().expect("server thread");
    requests as f64 / elapsed
}

/// A storm client that expects the server to misbehave: on any
/// transport failure it reconnects and retries the same request
/// (bounded), counting reconnects. Returns `(requests, errors,
/// reconnects)`.
fn service_client_resilient(
    addr: std::net::SocketAddr,
    seed: u64,
    total: usize,
) -> (u64, u64, u64) {
    use pdm_service::ServiceClient;
    use std::time::Duration;

    let connect = || {
        ServiceClient::builder()
            .read_timeout(Duration::from_secs(30))
            .connect(addr)
            .expect("connect resilient client")
    };
    let mut client = connect();
    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut reconnects = 0u64;
    let mut zipf = Zipf::new(SERVICE_SHAPES, SERVICE_ZIPF_S, seed);
    for r in 0..total {
        let idx = zipf.draw();
        let src = service_shape_source(idx);
        let req = if r % 4 == 0 {
            format!(
                r#"{{"op":"run","source":{},"params":["N"],"values":{{"N":24}},"seed":1,"deadline_ms":30000}}"#,
                quote(&src)
            )
        } else {
            format!(r#"{{"op":"plan","source":{},"params":["N"]}}"#, quote(&src))
        };
        requests += 1;
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts <= 50, "request retried 50 times — server wedged");
            match client.call(&req) {
                Ok(body) => {
                    if body.get("ok") != Some(&pdm_service::json::Json::Bool(true)) {
                        errors += 1;
                    }
                    break;
                }
                Err(_) => {
                    reconnects += 1;
                    client = connect();
                }
            }
        }
    }
    (requests, errors, reconnects)
}

/// Measure the fault-hardening layer: overhead ratio from two clean
/// storms, then a probabilistic faulting storm that must complete.
pub fn faults_cases() -> Vec<FaultsCase> {
    use pdm_service::{Faults, PlanServer, Session};
    use std::sync::Arc;

    println!("faults: clean storm, probes disarmed...");
    let baseline_per_s = clean_storm(Faults::disabled());
    println!("faults: clean storm, probes armed at probability 0...");
    let armed_per_s = clean_storm(Faults::parse(ARMED_ZERO_SPEC, 1).expect("armed-zero spec"));

    println!("faults: probabilistic faulting storm ({FAULT_STORM_SPEC})...");
    let session = Arc::new(
        Session::builder()
            .cache_capacity(8, 16)
            .threads(1)
            .faults(Faults::parse(FAULT_STORM_SPEC, 1).expect("fault spec"))
            .build(),
    );
    let server = PlanServer::bind("127.0.0.1:0", Arc::clone(&session), SERVICE_CLIENTS + 2)
        .expect("bind faulting storm");
    let addr = server.local_addr().expect("local addr");
    let serve = std::thread::spawn(move || server.serve().expect("serve"));

    let t0 = std::time::Instant::now();
    let clients: Vec<_> = (0..SERVICE_CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                service_client_resilient(addr, 0xbad + c as u64, FAULT_REQUESTS_PER_CLIENT)
            })
        })
        .collect();
    let mut fault_requests = 0u64;
    let mut fault_errors = 0u64;
    let mut fault_reconnects = 0u64;
    for c in clients {
        let (r, e, rc) = c.join().expect("resilient client thread");
        fault_requests += r;
        fault_errors += e;
        fault_reconnects += rc;
    }
    let fault_elapsed = t0.elapsed().as_secs_f64();
    let fault_panics = session
        .metrics()
        .panics
        .load(std::sync::atomic::Ordering::Relaxed);
    pdm_service::ServiceClient::connect(addr)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown");
    serve.join().expect("server thread");

    let cases = vec![FaultsCase {
        name: "hardening_c4",
        baseline_per_s,
        armed_per_s,
        fault_requests,
        fault_errors,
        fault_reconnects,
        fault_panics,
        fault_per_s: fault_requests as f64 / fault_elapsed,
    }];
    for c in &cases {
        println!(
            "{:<14} baseline {:>7.0} req/s, armed-at-0 {:>7.0} req/s (overhead ratio {:.3})   \
             faulting: {} reqs, {} errors, {} reconnects, {} panics, {:>6.0} req/s",
            c.name,
            c.baseline_per_s,
            c.armed_per_s,
            c.hardened_overhead(),
            c.fault_requests,
            c.fault_errors,
            c.fault_reconnects,
            c.fault_panics,
            c.fault_per_s,
        );
    }
    cases
}

/// Serialize fault-hardening cases into the committed
/// `BENCH_faults.json` shape. Gated: `service_hardened_overhead` (the
/// armed-at-zero / disarmed throughput ratio, both storms on the same
/// host in the same run — the fault layer must stay free when faults
/// are off). The gated ratio is clamped to 1.0: a lucky armed leg can
/// measure *faster* than the baseline, and committing that noise would
/// silently tighten the gate below its design floor. The
/// faulting-storm counters are context: fire counts are seeded but
/// arrival interleaving is scheduler-dependent.
pub fn faults_json(cases: &[FaultsCase]) -> String {
    let mut out = String::from("{\n  \"bench\": \"service_faults\",\n");
    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.push_str(&format!(
        "  \"machine_threads\": {machine},\n  \"cases\": [\n"
    ));
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_per_s\": {:.0}, \"armed_per_s\": {:.0}, \
             \"service_hardened_overhead\": {:.4}, \
             \"fault_requests\": {}, \"fault_errors\": {}, \"fault_reconnects\": {}, \
             \"fault_panics\": {}, \"fault_per_s\": {:.0}}}{}\n",
            c.name,
            c.baseline_per_s,
            c.armed_per_s,
            c.hardened_overhead().min(1.0),
            c.fault_requests,
            c.fault_errors,
            c.fault_reconnects,
            c.fault_panics,
            c.fault_per_s,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Inspector/executor speculation: audit cost vs. replan, and the
// executor each verdict picks.
// ---------------------------------------------------------------------

/// Parametric paper41: every first subscript coordinate shifted by the
/// named parameter `K`, so the concrete dependence structure at any
/// valuation is exactly paper41's — the hull plan certifies for every
/// `K` and the speculative executor is the plain parallel one.
pub const INSPECTOR_CERTIFIED_SRC: &str = "for i1 = 0..=199 { for i2 = 0..=199 {
   A[5*i1 + i2 + K, 7*i1 + 2*i2] = A[i1 + i2 + 4 + K, i1 + 2*i2 + 6] + 1;
 } }";

/// Uniform row shift: at `K = 1` each iteration writes the next row, so
/// the hull plan's single-iteration groups chain into row stages — the
/// audit demotes to the refined (staged) executor. The read-only `B`
/// and `C` operands contribute no conflicts (the chain is `A`'s alone)
/// but give the body realistic subscript arithmetic, which is what the
/// compiled stage driver strength-reduces and the interpreted walker
/// re-evaluates per access.
pub const INSPECTOR_REFINED_SRC: &str = "for i1 = 0..=149 { for i2 = 0..=149 {
   A[i1 + K, i2] = A[i1, i2] + B[2*i1 + i2, i1] + C[i1 + 2*i2, i2] + D[i1 + i2, 2*i1] + 1;
 } }";

/// Parity-mixing shift: at `K = 1` the write walks one hull partition
/// while the read trails the other, interleaved, so no stage order over
/// the groups exists — the audit demotes all the way to sequential.
pub const INSPECTOR_REJECTED_SRC: &str = "for i = 0..=9999 { A[i + K] = A[i - 2] + 1; }";

/// Runs per steady-state batch when timing the verdict-cached session
/// path against the uninspected one.
pub const INSPECTOR_BATCH: usize = 16;

/// Steady-state session throughput with the inspector on the path
/// (verdict served from the [`pdm_runtime::sharded::VerdictCache`])
/// versus the same concrete nest with no inspection at all.
pub struct InspectorSteadyState {
    /// Session runs per timed batch.
    pub batch: usize,
    /// Seconds per batch through the parametric (inspected) template.
    pub t_inspected: f64,
    /// Seconds per batch through the concrete (uninspected) nest.
    pub t_uninspected: f64,
}

impl InspectorSteadyState {
    /// Inspected over uninspected throughput, clamped to 1.0 for the
    /// same reason as [`FaultsCase::hardened_overhead`]'s snapshot: a
    /// lucky inspected leg must not tighten the committed gate.
    pub fn audit_overhead(&self) -> f64 {
        (self.t_uninspected / self.t_inspected).min(1.0)
    }
}

/// Interpreted vs. compiled execution of the same refined staging
/// (refined case only), both timed on the same host in the same run.
pub struct RefinedCompare {
    /// Seconds per staged run through the interpreted group walker.
    pub t_interpreted: f64,
    /// Seconds per staged run through the compiled range-task driver.
    pub t_compiled: f64,
}

impl RefinedCompare {
    /// Interpreted over compiled staged execution — the win of staging
    /// `CompiledPlan` range tasks instead of interpreting `exec_body`
    /// group by group.
    pub fn refined_compiled_speedup(&self) -> f64 {
        self.t_interpreted / self.t_compiled
    }
}

/// One inspector case: a parametric nest planned on its hull, audited
/// at a concrete valuation, and executed by whatever the verdict picks.
pub struct InspectorCase {
    /// Case label (stable; the JSON metric path).
    pub name: &'static str,
    /// The audit verdict at this case's valuation.
    pub verdict: &'static str,
    /// Iterations per full execution.
    pub iterations: u64,
    /// One audit of the concrete access lattice, seconds.
    pub audit: f64,
    /// Planning the concrete nest from scratch (the no-inspector
    /// alternative: replan per valuation), seconds.
    pub replan: f64,
    /// Forced-sequential execution, seconds.
    pub t_seq: f64,
    /// Execution under the verdict-picked executor, seconds.
    pub t_verdict: f64,
    /// Rayon threads available to the parallel executors.
    pub threads: usize,
    /// Steady-state session comparison (certified case only).
    pub steady: Option<InspectorSteadyState>,
    /// Interpreted-vs-compiled staged execution (refined case only).
    pub refined: Option<RefinedCompare>,
}

impl InspectorCase {
    /// Forced-sequential (interpreted reference) time over
    /// verdict-executor time — the win the speculation exists to
    /// deliver when the audit certifies. Without certification a
    /// parametric nest must assume the worst and take the sequential
    /// fallback; a certified audit unlocks the compiled parallel
    /// engine.
    pub fn certified_speedup(&self) -> f64 {
        self.t_seq / self.t_verdict
    }
}

fn run_inspector_case(
    name: &'static str,
    expected: &'static str,
    src: &str,
    k: i64,
    steady: bool,
) -> InspectorCase {
    use pdm_core::template::plan_template;
    use pdm_loopir::parse::parse_loop_symbolic;
    use pdm_runtime::inspector::{audit, run_with_verdict};

    let shape = parse_loop_symbolic(src, &["K"]).expect("parse inspector shape");
    let template = plan_template(&shape).expect("hull plan");
    assert!(template.requires_inspection(), "{name}: not parametric");
    let vals = [("K", k)];
    let plan = template.instantiate(&vals).expect("instantiate plan");
    let nest = template.instantiate_nest(&vals).expect("instantiate nest");

    let verdict = audit(&nest, &plan).expect("audit");
    assert_eq!(
        verdict.kind(),
        expected,
        "{name}: the workload no longer produces its designed verdict"
    );

    let audit_t = best(FM_REPS, || audit(&nest, &plan).unwrap());
    let replan_t = best(FM_REPS, || pdm_core::parallelize(&nest).unwrap());

    let mut mem = Memory::for_nest(&nest).expect("alloc");
    mem.init_deterministic(1);
    let iterations = run_with_verdict(&nest, &plan, &mem, &verdict).expect("verdict run");
    let t_seq = best(RUNTIME_REPS, || {
        pdm_runtime::run_sequential(&nest, &mem).unwrap()
    });
    // Time the executor the *session* dispatches on this verdict: a
    // certified audit unlocks the compiled parallel engine, a refined
    // one the staged interpreter, a rejected one the interpreted
    // sequential reference (exactly the forced-sequential baseline).
    let t_verdict = if verdict.kind() == "certified" {
        let cplan = CompiledPlan::compile(&nest, &plan, &mem).expect("compile plan");
        best(RUNTIME_REPS, || cplan.run_parallel(&mem).unwrap())
    } else {
        best(RUNTIME_REPS, || {
            run_with_verdict(&nest, &plan, &mem, &verdict).unwrap()
        })
    };

    // For a refined verdict, pit the interpreted stage walker against
    // the compiled range-task driver on the exact same staging — the
    // ratio is the gated `refined_compiled_speedup`.
    let refined = match &verdict {
        pdm_runtime::Verdict::Refined { stages } => {
            use pdm_runtime::inspector::{run_refined, run_refined_compiled};
            let cplan = CompiledPlan::compile(&nest, &plan, &mem).expect("compile refined plan");
            let sched = pdm_runtime::RuntimeConfig::global().schedule();
            let t_interpreted = best(RUNTIME_REPS, || {
                run_refined(&nest, &plan, &mem, stages).unwrap()
            });
            let t_compiled = best(RUNTIME_REPS, || {
                run_refined_compiled(&cplan, &mem, stages, sched).unwrap()
            });
            Some(RefinedCompare {
                t_interpreted,
                t_compiled,
            })
        }
        _ => None,
    };

    let steady = steady.then(|| {
        use pdm_service::Session;
        let session = Session::builder().cache_capacity(2, 4).threads(1).build();
        // Warm both paths: plan caches filled, the one audit taken.
        session.run(&shape, &vals, 1).expect("inspected warm-up");
        session.run(&nest, &[], 1).expect("uninspected warm-up");
        let t_inspected = best(RUNTIME_REPS, || {
            for _ in 0..INSPECTOR_BATCH {
                session.run(&shape, &vals, 1).unwrap();
            }
        });
        let t_uninspected = best(RUNTIME_REPS, || {
            for _ in 0..INSPECTOR_BATCH {
                session.run(&nest, &[], 1).unwrap();
            }
        });
        InspectorSteadyState {
            batch: INSPECTOR_BATCH,
            t_inspected,
            t_uninspected,
        }
    });

    InspectorCase {
        name,
        verdict: verdict.kind(),
        iterations,
        audit: audit_t,
        replan: replan_t,
        t_seq,
        t_verdict,
        threads: rayon::current_num_threads(),
        steady,
        refined,
    }
}

/// In-interval valuation storm: the first audit of a shifted-chain
/// template certifies a stability interval, and every subsequent
/// valuation inside it is answered from the interval tier of the
/// verdict cache without auditing.
pub struct IntervalStorm {
    /// Session runs dispatched.
    pub requests: u64,
    /// Audits actually performed (session audit-histogram count).
    pub audits: u64,
    /// Verdicts served from the interval tier.
    pub interval_hits: u64,
}

impl IntervalStorm {
    /// Fraction of requests whose audit was skipped:
    /// `(requests − audits) / requests`. Count-derived and
    /// deterministic, so it gates with the tight count tolerance.
    pub fn interval_skip_ratio(&self) -> f64 {
        (self.requests - self.audits) as f64 / self.requests as f64
    }
}

/// Drive 32 distinct valuations of the shifted dependence chain, all
/// inside one certified stability interval (`K ∈ [20, ∞)` keeps the
/// write range disjoint from the read range), through a fresh session.
/// Exactly the first request should audit.
pub fn inspector_storm() -> IntervalStorm {
    use pdm_loopir::parse::parse_loop_symbolic;
    use pdm_service::Session;
    use std::sync::atomic::Ordering;

    let shape = parse_loop_symbolic("for i = 0..=19 { A[i + K] = A[i] + 1; }", &["K"])
        .expect("parse storm shape");
    let session = Session::builder().threads(1).build();
    let mut requests = 0u64;
    for k in 40..72i64 {
        session.run(&shape, &[("K", k)], 1).expect("storm run");
        requests += 1;
    }
    let storm = IntervalStorm {
        requests,
        audits: session.metrics().inspector_audit.count(),
        interval_hits: session
            .metrics()
            .inspector_interval_hits
            .load(Ordering::Relaxed),
    };
    println!(
        "interval_storm      {:>3} requests   {} audit(s), {} interval hits (skip ratio {:.4})",
        storm.requests,
        storm.audits,
        storm.interval_hits,
        storm.interval_skip_ratio(),
    );
    storm
}

/// Measure the three verdict-shaped workloads, printing one summary
/// line per case.
pub fn inspector_cases() -> Vec<InspectorCase> {
    let cases = vec![
        run_inspector_case(
            "certified_paper41",
            "certified",
            INSPECTOR_CERTIFIED_SRC,
            3,
            true,
        ),
        run_inspector_case(
            "refined_rowshift",
            "refined",
            INSPECTOR_REFINED_SRC,
            1,
            false,
        ),
        run_inspector_case(
            "rejected_parity",
            "rejected",
            INSPECTOR_REJECTED_SRC,
            1,
            false,
        ),
    ];
    for c in &cases {
        print!(
            "{:<18} {:>9} verdict {:<9}  audit {:>7.1}us vs replan {:>7.1}us   seq {:>6.2}ms, picked {:>6.2}ms ({:.2}x, {} threads)",
            c.name,
            c.iterations,
            c.verdict,
            c.audit * 1e6,
            c.replan * 1e6,
            c.t_seq * 1e3,
            c.t_verdict * 1e3,
            c.certified_speedup(),
            c.threads,
        );
        if let Some(s) = &c.steady {
            print!(
                "   steady x{}: inspected {:.2}ms vs uninspected {:.2}ms (overhead {:.3})",
                s.batch,
                s.t_inspected * 1e3,
                s.t_uninspected * 1e3,
                s.audit_overhead(),
            );
        }
        if let Some(r) = &c.refined {
            print!(
                "   stages: interpreted {:.2}ms vs compiled {:.2}ms ({:.2}x)",
                r.t_interpreted * 1e3,
                r.t_compiled * 1e3,
                r.refined_compiled_speedup(),
            );
        }
        println!();
    }
    cases
}

/// Serialize inspector cases into the committed `BENCH_inspector.json`
/// shape. Gated: `inspector_certified_speedup` (forced-sequential over
/// certified-parallel, both timed on the same host in the same run),
/// `inspector_audit_overhead` (verdict-cached inspected over
/// uninspected session throughput, clamped to 1.0 — steady-state
/// inspection must stay free), `refined_compiled_speedup` (interpreted
/// over compiled staged execution of the refined verdict), and
/// `interval_skip_ratio` (fraction of storm requests answered without
/// auditing — count-derived, so it gates tight). The audit-vs-replan
/// timings ride along as context.
pub fn inspector_json(cases: &[InspectorCase], storm: &IntervalStorm) -> String {
    let mut out = String::from("{\n  \"bench\": \"inspector\",\n");
    let machine = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.push_str(&format!("  \"machine_threads\": {machine},\n"));
    out.push_str(&format!(
        "  \"storm\": {{\"requests\": {}, \"audits\": {}, \"interval_hits\": {}, \
         \"interval_skip_ratio\": {:.4}}},\n",
        storm.requests,
        storm.audits,
        storm.interval_hits,
        storm.interval_skip_ratio(),
    ));
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"verdict\": \"{}\", \"iterations\": {}, \
             \"threads\": {}, \"audit_us\": {:.2}, \"replan_us\": {:.2}, \
             \"seq_ms\": {:.3}, \"run_ms\": {:.3}",
            c.name,
            c.verdict,
            c.iterations,
            c.threads,
            c.audit * 1e6,
            c.replan * 1e6,
            c.t_seq * 1e3,
            c.t_verdict * 1e3,
        ));
        if c.verdict == "certified" {
            out.push_str(&format!(
                ", \"inspector_certified_speedup\": {:.2}",
                c.certified_speedup()
            ));
        }
        if let Some(r) = &c.refined {
            out.push_str(&format!(
                ", \"refined_interpreted_ms\": {:.3}, \"refined_compiled_ms\": {:.3}, \
                 \"refined_compiled_speedup\": {:.2}",
                r.t_interpreted * 1e3,
                r.t_compiled * 1e3,
                r.refined_compiled_speedup(),
            ));
        }
        if let Some(s) = &c.steady {
            out.push_str(&format!(
                ", \"steady_batch\": {}, \"inspected_ms\": {:.3}, \"uninspected_ms\": {:.3}, \
                 \"inspector_audit_overhead\": {:.4}",
                s.batch,
                s.t_inspected * 1e3,
                s.t_uninspected * 1e3,
                s.audit_overhead(),
            ));
        }
        out.push_str(&format!(
            "}}{}\n",
            if i + 1 == cases.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Regression comparison.
// ---------------------------------------------------------------------

/// One gated metric that regressed beyond tolerance (or disappeared).
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Flattened metric path (e.g. `cases.paper41_n200.seq_speedup`).
    pub key: String,
    /// Committed snapshot value.
    pub committed: f64,
    /// Freshly measured value (`None` when the metric vanished).
    pub fresh: Option<f64>,
}

/// Allowed drop for `_overhead` ratios: both legs of the ratio run
/// back-to-back on the same host, so their noise is correlated and a
/// tight band is safe. (The regeneration path is stricter still:
/// `bench_faults` refuses to write a snapshot below the absolute 0.95
/// floor.)
pub const OVERHEAD_TOLERANCE: f64 = 0.10;

/// Is this metric key gated? Ratio metrics (`_speedup`, `_reduction`,
/// `_overhead`, `_ratio`) always are — except the explicitly
/// informational `_time_ratio` timings, which flake at µs scale;
/// absolute throughput is gated only under strict mode.
pub fn is_gated(key: &str, strict: bool) -> bool {
    key.ends_with("_speedup")
        || key.ends_with("_reduction")
        || key.ends_with("_overhead")
        || (key.ends_with("_ratio") && !key.ends_with("_time_ratio"))
        || (strict && key.ends_with("_per_s"))
}

/// The allowed relative drop for a gated key: deterministic count
/// ratios (`_reduction`, `_ratio`) use [`TOLERANCE`], same-run
/// overhead ratios the tight [`OVERHEAD_TOLERANCE`], timing-derived
/// metrics the wider [`TIMING_TOLERANCE`].
pub fn tolerance_for(key: &str) -> f64 {
    if key.ends_with("_reduction") {
        TOLERANCE
    } else if key.ends_with("_overhead") {
        OVERHEAD_TOLERANCE
    } else if key.ends_with("_ratio") && !key.ends_with("_time_ratio") {
        TOLERANCE
    } else {
        TIMING_TOLERANCE
    }
}

/// Compare gated metrics of a fresh run against the committed snapshot.
/// A metric regresses when `fresh < committed · (1 − tolerance)` with
/// the per-key tolerance of [`tolerance_for`]; a gated metric missing
/// from the fresh run is always a failure (a silently dropped benchmark
/// must not pass the gate).
pub fn regressions(
    committed: &[(String, f64)],
    fresh: &[(String, f64)],
    strict: bool,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for (key, c) in committed {
        if !is_gated(key, strict) || *c <= 0.0 {
            continue;
        }
        match fresh.iter().find(|(k, _)| k == key) {
            Some((_, f)) if *f >= c * (1.0 - tolerance_for(key)) => {}
            Some((_, f)) => out.push(Regression {
                key: key.clone(),
                committed: *c,
                fresh: Some(*f),
            }),
            None => out.push(Regression {
                key: key.clone(),
                committed: *c,
                fresh: None,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn gate_ignores_absolute_throughput_by_default() {
        let committed = m(&[("c.a.x_per_s", 1000.0), ("c.a.seq_speedup", 4.0)]);
        let fresh = m(&[("c.a.x_per_s", 10.0), ("c.a.seq_speedup", 3.9)]);
        assert!(regressions(&committed, &fresh, false).is_empty());
        assert_eq!(regressions(&committed, &fresh, true).len(), 1);
    }

    #[test]
    fn gate_trips_on_ratio_drop_and_missing_metric() {
        let committed = m(&[("a.seq_speedup", 4.0), ("b.peak_reduction", 3.0)]);
        let fresh = m(&[("a.seq_speedup", 2.0)]);
        let r = regressions(&committed, &fresh, false);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].fresh, Some(2.0));
        assert_eq!(r[1].fresh, None);
    }

    #[test]
    fn gate_tolerates_within_threshold() {
        // Timing ratios get the wider tolerance (scheduler jitter)...
        let committed = m(&[("a.par_speedup", 4.0)]);
        let fresh = m(&[("a.par_speedup", 2.9)]);
        assert!(regressions(&committed, &fresh, false).is_empty());
        // ...while deterministic count ratios stay on the tight one.
        let committed = m(&[("b.peak_reduction", 4.0)]);
        let fresh = m(&[("b.peak_reduction", 2.9)]);
        assert_eq!(regressions(&committed, &fresh, false).len(), 1);
        let fresh = m(&[("b.peak_reduction", 3.1)]);
        assert!(regressions(&committed, &fresh, false).is_empty());
    }

    #[test]
    fn gate_holds_overhead_ratios_to_the_tight_band() {
        let key = "cases.hardening_c4.service_hardened_overhead";
        assert!(is_gated(key, false), "overhead key must be gated");
        assert_eq!(tolerance_for(key), OVERHEAD_TOLERANCE);
        // A same-run ratio near 1.0 passes; a real decay trips.
        let committed = m(&[(key, 1.0)]);
        assert!(regressions(&committed, &m(&[(key, 0.93)]), false).is_empty());
        assert_eq!(regressions(&committed, &m(&[(key, 0.85)]), false).len(), 1);
    }

    #[test]
    fn faults_json_exposes_the_gated_overhead_metric() {
        let c = FaultsCase {
            name: "t",
            baseline_per_s: 2000.0,
            armed_per_s: 1960.0,
            fault_requests: 1200,
            fault_errors: 3,
            fault_reconnects: 40,
            fault_panics: 40,
            fault_per_s: 800.0,
        };
        assert!((c.hardened_overhead() - 0.98).abs() < 1e-9);
        let json = faults_json(std::slice::from_ref(&c));
        let metrics = crate::json::parse(&json).unwrap().metrics();
        let key = "cases.t.service_hardened_overhead";
        assert!(
            metrics.iter().any(|(k, v)| k == key && *v > 0.9),
            "{metrics:?}"
        );
        // The faulting-storm counters ride along ungated.
        assert!(metrics.iter().any(|(k, _)| k == "cases.t.fault_panics"));
        assert!(!is_gated("cases.t.fault_per_s", false));

        // A lucky armed leg measuring above 1.0 is clamped, so noise
        // never tightens the committed gate.
        let lucky = FaultsCase {
            armed_per_s: 2100.0,
            ..c
        };
        let metrics = crate::json::parse(&faults_json(&[lucky]))
            .unwrap()
            .metrics();
        assert!(metrics.iter().any(|(k, v)| k == key && *v == 1.0));
    }

    #[test]
    fn inspector_case_measures_and_exposes_gated_metrics() {
        let c = run_inspector_case(
            "t",
            "certified",
            "for i = 0..=19 { A[i + K] = A[i] + 1; }",
            0,
            true,
        );
        assert_eq!(c.verdict, "certified");
        assert_eq!(c.iterations, 20);
        assert!(c.audit > 0.0 && c.replan > 0.0 && c.t_seq > 0.0 && c.t_verdict > 0.0);
        assert!(c.refined.is_none(), "certified case has no staged compare");
        let storm = inspector_storm();
        assert_eq!(storm.requests, 32);
        assert_eq!(storm.audits, 1, "storm must audit exactly once");
        assert_eq!(storm.interval_hits, storm.requests - 1);
        let json = inspector_json(std::slice::from_ref(&c), &storm);
        let metrics = crate::json::parse(&json).unwrap().metrics();
        for key in [
            "cases.t.inspector_certified_speedup",
            "cases.t.inspector_audit_overhead",
            "storm.interval_skip_ratio",
        ] {
            assert!(
                metrics.iter().any(|(k, v)| k == key && *v > 0.0),
                "{key} missing: {metrics:?}"
            );
            assert!(is_gated(key, false), "{key} must be gated");
        }
        // The skip ratio is count-derived, so it gates tight — and the
        // legacy informational timing ratios must stay ungated.
        assert_eq!(tolerance_for("storm.interval_skip_ratio"), TOLERANCE);
        assert!(!is_gated("elim_cases.x.elim_time_ratio", true));
        assert!(!is_gated("cases.x.enum_time_ratio", true));
        // The overhead clamp: the committed ratio never exceeds 1.0.
        let (_, overhead) = metrics
            .iter()
            .find(|(k, _)| k == "cases.t.inspector_audit_overhead")
            .unwrap();
        assert!(*overhead <= 1.0);

        // The demoted verdicts keep their designed shapes — and the
        // refined case carries the gated staged-execution compare.
        let c = run_inspector_case(
            "r",
            "refined",
            "for i1 = 0..=7 { for i2 = 0..=7 { A[i1 + K, i2] = A[i1, i2] + 1; } }",
            1,
            false,
        );
        assert!(c.steady.is_none());
        let r = c.refined.as_ref().expect("refined compare");
        assert!(r.t_interpreted > 0.0 && r.t_compiled > 0.0);
        let metrics = crate::json::parse(&inspector_json(&[c], &storm))
            .unwrap()
            .metrics();
        assert!(!metrics
            .iter()
            .any(|(k, _)| k.contains("inspector_certified_speedup")));
        let key = "cases.r.refined_compiled_speedup";
        assert!(
            metrics.iter().any(|(k, v)| k == key && *v > 0.0),
            "{key} missing: {metrics:?}"
        );
        assert!(is_gated(key, false), "{key} must be gated");
    }

    #[test]
    fn random_deep_systems_are_deterministic() {
        let a = random_deep_system(5, 10, 42);
        let b = random_deep_system(5, 10, 42);
        assert_eq!(a, b);
        assert!(a.len() >= 10);
    }

    #[test]
    fn fm_plan_case_runs_on_paper41() {
        let c = run_fm_plan_case("t", &paper41(0, 9));
        assert_eq!(c.depth, 2);
        assert!(c.rows_pruned <= c.rows_unpruned);
        assert_eq!(c.compiled_rows, c.rows_pruned);
    }

    #[test]
    fn groups_case_measures_counts_and_peaks() {
        // Loose assertions only: the live-group gauge is process-wide and
        // other tests in this binary run groups concurrently.
        let c = run_groups_case("t", &doall4(5));
        assert_eq!(c.groups, 5u64.pow(4));
        assert!(c.t_materialize > 0.0 && c.t_stream > 0.0);
        assert!(c.peak_materialized >= c.groups as i64);
        let json = groups_json(&[c]);
        let metrics = crate::json::parse(&json).unwrap().metrics();
        assert!(metrics
            .iter()
            .any(|(k, v)| k == "cases.t.peak_live_reduction" && *v >= 1.0));
    }

    #[test]
    fn template_case_measures_and_exposes_gated_metric() {
        let c = run_template_case("t", PAPER41_SYM, 20);
        assert_eq!(c.depth, 2);
        assert!(c.replan > 0.0 && c.instantiate > 0.0 && c.template_once > 0.0);
        let json = template_json(&[c]);
        let metrics = crate::json::parse(&json).unwrap().metrics();
        let key = "cases.t.template_instantiate_speedup";
        assert!(metrics.iter().any(|(k, v)| k == key && *v > 0.0));
        assert!(is_gated(key, false), "speedup key must be gated");
    }

    #[test]
    fn imperfect_case_measures_and_exposes_gated_metric() {
        let src = imperfect_rowinit_src(40);
        let c = run_imperfect_case("t", &src);
        assert_eq!(c.kernels, 2);
        assert!(c.t_reference > 0.0 && c.t_compiled_par > 0.0);
        let json = imperfect_json(&[c]);
        let metrics = crate::json::parse(&json).unwrap().metrics();
        let key = "cases.t.imperfect_speedup";
        assert!(metrics.iter().any(|(k, v)| k == key && *v > 0.0));
        assert!(is_gated(key, false), "speedup key must be gated");
    }

    #[test]
    fn scaling_case_measures_and_exposes_gated_metric() {
        let nest = scaling_skewed(24);
        let c = run_scaling_case("t", &nest, true);
        assert!(c.skewed);
        assert!(!c.points.is_empty());
        // Pool width 1 must actually run serial — the region gauge is
        // what the committed snapshots record.
        let p1 = c
            .points
            .iter()
            .find(|p| p.threads == 1)
            .expect("serial point");
        assert_eq!(p1.observed_interp, 1);
        assert_eq!(p1.observed_compiled, 1);
        assert!(c.t_contiguous > 0.0 && c.t_stealing > 0.0);
        let json = scaling_json(&[c]);
        let metrics = crate::json::parse(&json).unwrap().metrics();
        let key = "cases.t.skewed_scaling_speedup";
        assert!(metrics.iter().any(|(k, v)| k == key && *v > 0.0));
        assert!(is_gated(key, false), "speedup key must be gated");
        // Ladder points carry configured and observed widths.
        assert!(metrics
            .iter()
            .any(|(k, _)| k == "cases.t_t1.observed_compiled_threads"));
    }

    #[test]
    fn scaling_workload_skew_matches_design() {
        let b = scaling_balanced(12);
        let plan = pdm_core::parallelize(&b).expect("plan");
        assert!(!cost_skewed(plan.bounds(), plan.doall_count()));
        let s = scaling_skewed(12);
        let plan = pdm_core::parallelize(&s).expect("plan");
        assert!(cost_skewed(plan.bounds(), plan.doall_count()));
    }

    #[test]
    fn elim_case_peak_never_grows_under_pruning() {
        let c = run_fm_elim_case("t", &random_deep_system(4, 8, 3));
        assert!(c.fast.peak_rows <= c.unpruned.peak_rows);
        assert!(c.exact.peak_rows <= c.fast.peak_rows);
    }
}
