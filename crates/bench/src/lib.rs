//! # pdm-bench — harness regenerating every table and figure of the paper
//!
//! Binaries (`cargo run -p pdm-bench --bin <name>`):
//!
//! | bin | paper artifact |
//! |-----|----------------|
//! | `fig2` | Figure 2 — ISDG of the §4.1 loop, N = 10, range −10..10 |
//! | `fig3` | Figure 3 — §4.1 after the unimodular + partitioning transforms |
//! | `fig4` | Figure 4 — ISDG of the §4.2 loop |
//! | `fig5` | Figure 5 — §4.2 split into det = 4 independent partitions |
//! | `table1` | Table 1 — the method-comparison matrix, *measured* |
//! | `experiments` | every row of EXPERIMENTS.md in one run |
//!
//! Performance snapshots and the CI regression gate:
//!
//! | bin | role |
//! |-----|------|
//! | `bench_runtime` | writes `BENCH_runtime.json` (compiled vs. interpreted throughput) |
//! | `bench_fm` | writes `BENCH_fm.json` (FM pruning: bound rows, peak rows, timings) |
//! | `bench_groups` | writes `BENCH_groups.json` (streaming vs. materialized group enumeration) |
//! | `bench_template` | writes `BENCH_template.json` (plan-template instantiate vs. replan) |
//! | `bench_imperfect` | writes `BENCH_imperfect.json` (imperfect-nest staged pipelines) |
//! | `bench_scaling` | writes `BENCH_scaling.json` (work-stealing thread scaling, stealing vs. contiguous split) |
//! | `bench_service` | writes `BENCH_service.json` (plan-serving storm: zipf-mixed requests over TCP) |
//! | `bench_faults` | writes `BENCH_faults.json` (fault-hardening overhead + resilience storms) |
//! | `bench_inspector` | writes `BENCH_inspector.json` (inspector audit cost, verdict-picked executors) |
//! | `bench_check` | re-measures every snapshot and fails on regression of gated metrics |
//!
//! Criterion benches (`cargo bench -p pdm-bench`) measure the quantitative
//! side: analysis cost, transformation scaling, and the speedup of the
//! generated schedules under rayon.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

// The dependency-free JSON parser/serializer lives in pdm-service now
// (it frames the wire protocol there); re-exported so existing
// `pdm_bench::json` callers keep working.
pub use pdm_service::json;
pub mod perf;

use pdm_core::plan::ParallelPlan;
use pdm_loopir::nest::LoopNest;
use pdm_loopir::parse::parse_loop_with;
use pdm_runtime::memory::Memory;
use std::time::Instant;

/// The reconstructed §4.1 loop over `lo..=hi` squares (the paper's figures
/// use −10..=10; see DESIGN.md for the reconstruction note).
pub fn paper41(lo: i64, hi: i64) -> LoopNest {
    parse_loop_with(
        "for i1 = LO..=HI { for i2 = LO..=HI {
           A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
         } }",
        &[("LO", lo), ("HI", hi)],
    )
    .expect("paper41 parses")
}

/// The reconstructed §4.2 loop.
pub fn paper42(lo: i64, hi: i64) -> LoopNest {
    parse_loop_with(
        "for i1 = LO..=HI { for i2 = LO..=HI {
           A[i1, 3*i2 + 2] = B[i1, i2] + 1;
           B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
         } }",
        &[("LO", lo), ("HI", hi)],
    )
    .expect("paper42 parses")
}

/// Wall-clock a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64())
}

/// Measured speedup of a plan's parallel execution over sequential, with
/// result equivalence verified. Returns `(seq_seconds, par_seconds,
/// speedup)`.
pub fn measure_speedup(nest: &LoopNest, plan: &ParallelPlan, reps: usize) -> (f64, f64, f64) {
    // Warm-up + verification run.
    let rep = pdm_runtime::equivalence::compare(nest, plan, 1).expect("execute");
    assert!(rep.equal, "parallel run diverged — refusing to time it");

    let mut best_seq = f64::INFINITY;
    let mut best_par = f64::INFINITY;
    for _ in 0..reps {
        let mut m = Memory::for_nest(nest).expect("alloc");
        m.init_deterministic(1);
        let (_, t) = time(|| pdm_runtime::run_sequential(nest, &m).expect("seq"));
        best_seq = best_seq.min(t);

        let mut m = Memory::for_nest(nest).expect("alloc");
        m.init_deterministic(1);
        let (_, t) = time(|| pdm_runtime::run_parallel(nest, plan, &m).expect("par"));
        best_par = best_par.min(t);
    }
    (best_seq, best_par, best_seq / best_par)
}

/// A `(claimed, measured, pass)` line for the experiment report.
pub fn claim(
    label: &str,
    expected: impl std::fmt::Display,
    got: impl std::fmt::Display,
    pass: bool,
) {
    println!(
        "  [{}] {label}: paper={expected} measured={got}",
        if pass { "OK" } else { "!!" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_nests_have_documented_plans() {
        let p41 = paper41(0, 9);
        let plan = pdm_core::parallelize(&p41).unwrap();
        assert_eq!(plan.doall_count(), 1);
        assert_eq!(plan.partition_count(), 2);
        let p42 = paper42(0, 9);
        let plan = pdm_core::parallelize(&p42).unwrap();
        assert_eq!(plan.partition_count(), 4);
    }

    #[test]
    fn negative_ranges_work() {
        let p41 = paper41(-10, 10);
        assert_eq!(p41.iterations().unwrap().len(), 441);
    }

    #[test]
    fn speedup_harness_verifies_and_times() {
        let nest = paper41(0, 15);
        let plan = pdm_core::parallelize(&nest).unwrap();
        let (s, p, sp) = measure_speedup(&nest, &plan, 1);
        assert!(s > 0.0 && p > 0.0 && sp > 0.0);
    }
}
