//! Write the committed `BENCH_faults.json` snapshot: the cost and the
//! worth of the fault-hardening layer. Three storms over real TCP:
//!
//! 1. probes disarmed (the plain service path),
//! 2. every probe armed at probability 0 (full fault-layer bookkeeping,
//!    no fault ever fires),
//! 3. probabilistic handler panics, torn frames, and dropped sockets
//!    against reconnecting clients (the server must keep serving).
//!
//! ```sh
//! cargo run --release -p pdm-bench --bin bench_faults
//! ```
//!
//! Gated by `bench_check`: `service_hardened_overhead`, the ratio of
//! armed-at-zero to disarmed throughput — the hardening layer must stay
//! (near-)free when faults are off. This binary refuses to write a
//! snapshot below the absolute 0.95 floor (fault-free overhead > 5%).

use pdm_bench::perf;

fn main() {
    println!("bench_faults: hardening overhead + fault-injection storms");
    let cases = perf::faults_cases();
    for c in &cases {
        let overhead = c.hardened_overhead();
        assert!(
            overhead >= 0.95,
            "{}: armed-at-zero throughput is {overhead:.3}x the disarmed baseline — \
             fault-free hardening overhead exceeds the 5% floor",
            c.name
        );
        assert_eq!(
            c.fault_errors, 0,
            "{}: faulting storm surfaced in-band errors to resilient clients",
            c.name
        );
        assert!(
            c.fault_panics > 0 && c.fault_reconnects > 0,
            "{}: faulting storm injected nothing ({} panics, {} reconnects) — \
             the resilience leg proved nothing",
            c.name,
            c.fault_panics,
            c.fault_reconnects
        );
    }
    let json = perf::faults_json(&cases);
    std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
    println!("\nwrote BENCH_faults.json");
}
