//! Write the committed `BENCH_template.json` snapshot: parametric plan
//! templates — `PlanTemplate::instantiate` (affine bound-row evaluation,
//! no FM, no analysis) vs. full concrete replanning, across problem
//! sizes of the paper nests and the stencils.
//!
//! ```sh
//! cargo run --release -p pdm-bench --bin bench_template
//! ```
//!
//! Gated by `bench_check`: `template_instantiate_speedup` (replan ÷
//! instantiate, both timed on the same host in the same run). Every case
//! first pins the instantiated plan to the fresh plan — identical
//! transform, doall prefix, partition count, and transformed iteration
//! space — before any timing happens.

use pdm_bench::perf;

fn main() {
    println!("bench_template: instantiate vs. replan across problem sizes");
    let cases = perf::template_cases();
    let json = perf::template_json(&cases);
    std::fs::write("BENCH_template.json", &json).expect("write BENCH_template.json");
    println!("\nwrote BENCH_template.json");
}
