//! Write the committed `BENCH_groups.json` snapshot: streaming group
//! enumeration vs. the historical materialized cross product — peak
//! simultaneously-live group structs (the allocation-spike metric) and
//! enumeration throughput.
//!
//! ```sh
//! cargo run --release -p pdm-bench --bin bench_groups
//! ```
//!
//! Gated by `bench_check`: `peak_live_reduction` (deterministic — the
//! compiled streaming path constructs zero group structs) and, where the
//! streaming walk wins by a comfortable margin, `enum_speedup`.

use pdm_bench::perf;

fn main() {
    println!("bench_groups: streaming vs. materialized group enumeration");
    let cases = perf::groups_cases();
    let json = perf::groups_json(&cases);
    std::fs::write("BENCH_groups.json", &json).expect("write BENCH_groups.json");
    println!("\nwrote BENCH_groups.json");
}
