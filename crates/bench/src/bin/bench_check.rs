//! CI perf-regression gate: re-measure the `BENCH_runtime.json`,
//! `BENCH_fm.json`, `BENCH_groups.json`, `BENCH_template.json`,
//! `BENCH_imperfect.json`, `BENCH_scaling.json`, `BENCH_service.json`,
//! `BENCH_faults.json`, and `BENCH_inspector.json` workloads and fail
//! when a gated metric drops below the committed
//! snapshot by more than its tolerance (25% for deterministic count
//! ratios, 40% for timing-based speedups — see `pdm_bench::perf`).
//! Per-metric deltas are printed even on green runs so drifts stay
//! visible before they trip the gate.
//!
//! ```sh
//! cargo run --release -p pdm-bench --bin bench_check
//! ```
//!
//! Gated metrics are the machine-portable ratios (`*_speedup`,
//! `*_reduction`) — both factors of a ratio are measured on the same
//! host in the same run, so a slower CI runner does not trip the gate,
//! while a genuine engine or pruning regression does. Absolute
//! throughput (`*_per_s`) is printed for context and gated only with
//! `BENCH_CHECK_STRICT=1` (useful on a pinned benchmarking machine).
//! A gated metric missing from the fresh run also fails — dropping a
//! benchmark must be an explicit snapshot regeneration
//! (`bench_runtime` / `bench_fm`), not a silent pass.

use pdm_bench::{json, perf};
use std::process::ExitCode;

fn committed_metrics(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{path}: {e} (regenerate with the matching bench binary)"))?;
    Ok(json::parse(&text)
        .map_err(|e| format!("{path}: {e}"))?
        .metrics())
}

fn check(
    label: &str,
    committed: &[(String, f64)],
    fresh_json: &str,
    strict: bool,
) -> Result<Vec<perf::Regression>, String> {
    let fresh = json::parse(fresh_json)
        .map_err(|e| format!("fresh {label} output: {e}"))?
        .metrics();
    println!("\n{label}: gated metrics (committed -> fresh, delta)");
    for (key, c) in committed {
        if !perf::is_gated(key, strict) {
            continue;
        }
        let tol = perf::tolerance_for(key) * 100.0;
        let f = fresh.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        match f {
            // Deltas print on every run — green runs included — so a
            // drift toward the tolerance edge is visible before it trips.
            Some(v) if *c > 0.0 => println!(
                "  {key:<44} {c:>9.2} -> {v:>9.2}  ({:+7.1}%, tol {tol:.0}%)",
                (v / c - 1.0) * 100.0
            ),
            Some(v) => println!("  {key:<44} {c:>9.2} -> {v:>9.2}  (tol {tol:.0}%)"),
            None => println!("  {key:<44} {c:>9.2} -> MISSING"),
        }
    }
    Ok(perf::regressions(committed, &fresh, strict))
}

fn main() -> ExitCode {
    let strict = std::env::var("BENCH_CHECK_STRICT").is_ok_and(|v| v == "1");

    let committed_runtime = match committed_metrics("BENCH_runtime.json") {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed_fm = match committed_metrics("BENCH_fm.json") {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed_groups = match committed_metrics("BENCH_groups.json") {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed_template = match committed_metrics("BENCH_template.json") {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed_imperfect = match committed_metrics("BENCH_imperfect.json") {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed_scaling = match committed_metrics("BENCH_scaling.json") {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed_service = match committed_metrics("BENCH_service.json") {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed_faults = match committed_metrics("BENCH_faults.json") {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let committed_inspector = match committed_metrics("BENCH_inspector.json") {
        Ok(m) => m,
        Err(e) => {
            eprintln!("bench_check: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("bench_check: re-measuring runtime throughput...");
    let runtime_fresh = perf::runtime_json(&perf::runtime_cases());
    println!("bench_check: re-measuring FM pruning...");
    let (plans, elims) = perf::fm_cases();
    let fm_fresh = perf::fm_json(&plans, &elims);
    println!("bench_check: re-measuring group enumeration...");
    let groups_fresh = perf::groups_json(&perf::groups_cases());
    println!("bench_check: re-measuring template instantiation...");
    let template_fresh = perf::template_json(&perf::template_cases());
    println!("bench_check: re-measuring imperfect-nest pipelines...");
    let imperfect_fresh = perf::imperfect_json(&perf::imperfect_cases());
    println!("bench_check: re-measuring thread scaling...");
    let scaling_fresh = perf::scaling_json(&perf::scaling_cases());
    println!("bench_check: re-measuring the plan-serving storm...");
    let service_fresh = perf::service_json(&perf::service_cases());
    println!("bench_check: re-measuring the fault-hardening storms...");
    let faults_fresh = perf::faults_json(&perf::faults_cases());
    println!("bench_check: re-measuring the inspector verdicts...");
    let inspector_fresh = perf::inspector_json(&perf::inspector_cases(), &perf::inspector_storm());

    let mut regressions = Vec::new();
    for (label, committed, fresh) in [
        ("BENCH_runtime", &committed_runtime, runtime_fresh.as_str()),
        ("BENCH_fm", &committed_fm, fm_fresh.as_str()),
        ("BENCH_groups", &committed_groups, groups_fresh.as_str()),
        (
            "BENCH_template",
            &committed_template,
            template_fresh.as_str(),
        ),
        (
            "BENCH_imperfect",
            &committed_imperfect,
            imperfect_fresh.as_str(),
        ),
        ("BENCH_scaling", &committed_scaling, scaling_fresh.as_str()),
        ("BENCH_service", &committed_service, service_fresh.as_str()),
        ("BENCH_faults", &committed_faults, faults_fresh.as_str()),
        (
            "BENCH_inspector",
            &committed_inspector,
            inspector_fresh.as_str(),
        ),
    ] {
        match check(label, committed, fresh, strict) {
            Ok(mut r) => regressions.append(&mut r),
            Err(e) => {
                eprintln!("bench_check: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if regressions.is_empty() {
        println!("\nbench_check: PASS (no gated metric regressed past tolerance)");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nbench_check: FAIL — {} regression(s):", regressions.len());
        for r in &regressions {
            match r.fresh {
                Some(f) => eprintln!(
                    "  {}: committed {:.2}, fresh {:.2} ({:+.0}%)",
                    r.key,
                    r.committed,
                    f,
                    (f / r.committed - 1.0) * 100.0
                ),
                None => eprintln!(
                    "  {}: committed {:.2}, missing from fresh run",
                    r.key, r.committed
                ),
            }
        }
        eprintln!(
            "(intentional? regenerate the snapshots with bench_runtime / bench_fm / \
             bench_groups / bench_template / bench_imperfect / bench_scaling / \
             bench_service / bench_faults / bench_inspector)"
        );
        ExitCode::FAILURE
    }
}
