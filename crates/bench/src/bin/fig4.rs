//! Figure 4 reproduction: ISDG of the (reconstructed) §4.2 loop, N = 10.
//!
//! The paper's caption: arrows always jump a stride greater than 1 along
//! i1 and/or i2, implying the existence of independent partitions. We
//! print the grid, verify the stride property, and show the distance
//! histogram (every distance in `L([[2,1],[0,2]])`).

use pdm_bench::paper42;
use pdm_isdg::metrics::metrics;
use pdm_isdg::render::{ascii_grid, distance_histogram};

fn main() {
    let nest = paper42(-10, 10);
    let g = pdm_isdg::build(&nest).expect("ISDG");
    println!("=== Figure 4: ISDG of the original Section 4.2 loop (N = 10) ===\n");
    println!("{}", pdm_loopir::pretty::render(&nest));
    println!("{}", ascii_grid(&g));
    let m = metrics(&g);
    println!("iterations       : {}", m.iterations);
    println!("dependent        : {}", m.dependent);
    println!("direct edges     : {}", m.edges);
    println!("chains/components: {}", m.components);
    println!("critical path    : {}", m.critical_path);

    println!("\ndistance histogram:");
    for (d, c) in distance_histogram(&g) {
        println!("  d = {d:?}  x{c}");
    }

    // Paper claim: every arrow jumps a stride > 1 along i1 and/or i2.
    let strided = g.distances().iter().all(|d| d.iter().any(|&x| x.abs() > 1));
    pdm_bench::claim(
        "every arrow strides > 1 in some dimension",
        "yes",
        if strided { "yes" } else { "no" },
        strided,
    );

    let analysis = pdm_core::analyze(&nest).expect("analysis");
    println!("\nPDM (paper eq. 4.12 [[2,1],[0,2]]):\n{}", analysis.pdm());
    let expect = pdm_matrix::IMat::from_rows(&[vec![2, 1], vec![0, 2]]).unwrap();
    pdm_bench::claim(
        "PDM equals [[2,1],[0,2]]",
        "yes",
        format!("{}", analysis.pdm() == &expect),
        analysis.pdm() == &expect,
    );
    pdm_bench::claim(
        "det(PDM) = 4 independent partitions available",
        4,
        analysis.lattice().unwrap().index().unwrap_or(0),
        analysis.lattice().unwrap().index() == Some(4),
    );
}
