//! Figure 5 reproduction: the §4.2 iteration space partitioned into
//! det(H) = 4 independent 2-D spaces (offsets io1, io2 ∈ {0,1}).
//!
//! The paper renders the four partitions in the *original* space — same
//! square shape, shifted offsets, shortened arrows. We do the same: one
//! grid per offset pair, plus the structural checks (dependences never
//! cross partitions; arrows shrink in proportion to the step).

use pdm_bench::paper42;
use std::collections::BTreeSet;

fn main() {
    let nest = paper42(-10, 10);
    let plan = pdm_core::parallelize(&nest).expect("plan");
    println!("=== Figure 5: Section 4.2 loop partitioned into 4 independent spaces ===\n");
    println!("{}", pdm_core::codegen::render_plan(&nest, &plan).unwrap());
    pdm_bench::claim(
        "number of partitions",
        4,
        plan.partition_count(),
        plan.partition_count() == 4,
    );

    // Group every iteration by its partition offset.
    let mut by_offset: std::collections::BTreeMap<Vec<i64>, BTreeSet<(i64, i64)>> =
        Default::default();
    for it in nest.iterations().unwrap() {
        let (_, off) = plan.group_of(&it).unwrap();
        by_offset
            .entry(off.0.clone())
            .or_default()
            .insert((it[0], it[1]));
    }
    pdm_bench::claim(
        "distinct offsets found",
        4,
        by_offset.len(),
        by_offset.len() == 4,
    );

    // No dependence crosses partitions.
    let g = pdm_isdg::build(&nest).expect("ISDG");
    let crossing = g
        .edges()
        .iter()
        .filter(|e| plan.group_of(&e.from).unwrap() != plan.group_of(&e.to).unwrap())
        .count();
    pdm_bench::claim(
        "dependences crossing partitions",
        0,
        crossing,
        crossing == 0,
    );

    for (off, cells) in &by_offset {
        println!(
            "\n--- partition io = {off:?} ({} iterations, original space) ---",
            cells.len()
        );
        let (lo, hi) = (-10i64, 10i64);
        for i2 in (lo..=hi).rev() {
            print!("{i2:>4} |");
            for i1 in lo..=hi {
                print!(
                    "{}",
                    if cells.contains(&(i1, i2)) {
                        " #"
                    } else {
                        " ."
                    }
                );
            }
            println!();
        }
    }

    let rep = pdm_runtime::equivalence::compare(&nest, &plan, 17).expect("exec");
    pdm_bench::claim(
        "parallel execution bit-identical to sequential",
        "yes",
        format!("{} groups", rep.groups),
        rep.equal,
    );
}
