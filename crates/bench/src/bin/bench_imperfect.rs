//! Imperfect-nest snapshot: normalized staged execution vs. the
//! whole-nest sequential reference, written to `BENCH_imperfect.json`.
//!
//! ```sh
//! cargo run --release -p pdm-bench --bin bench_imperfect
//! ```
//!
//! Cases:
//! * `lu_n72` — the LU-style three-depth nest (dependence cycle through
//!   the outer loop ⇒ full code sinking into one guarded kernel);
//! * `rowinit_n480` — initialization prologue + row recurrence
//!   (fissions into two kernels, the second with an outer doall).
//!
//! The gated metric is `imperfect_speedup` — compiled staged-parallel
//! over the interpreted whole-nest reference, both measured here on the
//! same host — checked by `bench_check` with the timing tolerance.

use pdm_bench::perf;

fn main() {
    println!("bench_imperfect: measuring imperfect-nest pipelines...");
    let cases = perf::imperfect_cases();
    let json = perf::imperfect_json(&cases);
    std::fs::write("BENCH_imperfect.json", &json).expect("write BENCH_imperfect.json");
    println!("\nwrote BENCH_imperfect.json:\n{json}");
}
