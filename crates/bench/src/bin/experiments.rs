//! One-shot runner for every experiment row of EXPERIMENTS.md.
//!
//! Prints a compact paper-claim vs measured summary for FIG2–FIG5, TAB1
//! and the quantitative EXTRA experiments (speedup, analysis scaling,
//! partition counts).

use pdm_baselines::report::Parallelizer;
use pdm_bench::{claim, measure_speedup, paper41, paper42};
use pdm_isdg::metrics::metrics;

fn main() {
    println!("==================================================================");
    println!(" Experiment summary — Yu & D'Hollander, ICPP 2000 reproduction");
    println!("==================================================================\n");

    // ---------------- FIG2 / EQ41 ----------------
    println!("[FIG2/EQ41] Section 4.1 analysis");
    let nest41 = paper41(-10, 10);
    let a41 = pdm_core::analyze(&nest41).unwrap();
    claim(
        "PDM of the 4.1 loop",
        "[[2,2]] (rank 1, variable distances)",
        format!("{:?} rows, uniform={}", a41.pdm().rows(), a41.is_uniform()),
        a41.pdm() == &pdm_matrix::IMat::from_rows(&[vec![2, 2]]).unwrap(),
    );
    let g41 = pdm_isdg::build(&nest41).unwrap();
    let m41 = metrics(&g41);
    claim(
        "ISDG has long variable-stride chains",
        "chains over N=10 grid",
        format!(
            "{} components, critical path {}",
            m41.components, m41.critical_path
        ),
        m41.components > 1 && m41.critical_path > 2,
    );

    // ---------------- FIG3 ----------------
    println!("\n[FIG3] Section 4.1 transformed");
    let plan41 = pdm_core::parallelize(&nest41).unwrap();
    claim(
        "doall loops",
        1,
        plan41.doall_count(),
        plan41.doall_count() == 1,
    );
    claim(
        "partitions",
        2,
        plan41.partition_count(),
        plan41.partition_count() == 2,
    );
    let perp = g41.edges().iter().all(|e| {
        let dy = plan41
            .transformed_index(&e.to)
            .unwrap()
            .sub(&plan41.transformed_index(&e.from).unwrap())
            .unwrap();
        dy[0] == 0
    });
    claim("arrows perpendicular to parallel axis", "yes", perp, perp);
    let rep = pdm_runtime::equivalence::compare(&nest41, &plan41, 3).unwrap();
    claim(
        "transformed execution equivalent",
        "yes",
        format!("{} groups", rep.groups),
        rep.equal,
    );

    // ---------------- FIG4 / EQ42 ----------------
    println!("\n[FIG4/EQ42] Section 4.2 analysis");
    let nest42 = paper42(-10, 10);
    let a42 = pdm_core::analyze(&nest42).unwrap();
    claim(
        "PDM equals eq. (4.12) [[2,1],[0,2]]",
        "yes",
        format!("{}", a42.pdm()).replace('\n', " "),
        a42.pdm() == &pdm_matrix::IMat::from_rows(&[vec![2, 1], vec![0, 2]]).unwrap(),
    );
    let g42 = pdm_isdg::build(&nest42).unwrap();
    let strided = g42
        .distances()
        .iter()
        .all(|d| d.iter().any(|&x| x.abs() > 1));
    claim("all arrows stride > 1 somewhere", "yes", strided, strided);

    // ---------------- FIG5 ----------------
    println!("\n[FIG5] Section 4.2 partitioned");
    let plan42 = pdm_core::parallelize(&nest42).unwrap();
    claim(
        "det(H) = 4 partitions",
        4,
        plan42.partition_count(),
        plan42.partition_count() == 4,
    );
    let crossing = g42
        .edges()
        .iter()
        .filter(|e| plan42.group_of(&e.from).unwrap() != plan42.group_of(&e.to).unwrap())
        .count();
    claim("cross-partition dependences", 0, crossing, crossing == 0);
    let rep42 = pdm_runtime::equivalence::compare(&nest42, &plan42, 3).unwrap();
    claim("execution equivalent", "yes", rep42.equal, rep42.equal);

    // ---------------- TAB1 ----------------
    println!("\n[TAB1] method comparison (see `--bin table1` for the full matrix)");
    let ban = pdm_baselines::banerjee::Banerjee.analyze(&nest41).unwrap();
    claim(
        "Banerjee/D'Hollander inapplicable on variable distances",
        "yes",
        !ban.applicable,
        !ban.applicable,
    );
    let wl = pdm_baselines::wolf_lam::WolfLam.analyze(&nest41).unwrap();
    let pm = pdm_baselines::pdm_method::PdmMethod
        .analyze(&nest41)
        .unwrap();
    claim(
        "PDM strictly dominates direction vectors on §4.1",
        "doall 1 + 2 partitions vs none",
        format!(
            "pdm=({},{}) wolf-lam=({},{})",
            pm.outer_doall, pm.partitions, wl.outer_doall, wl.partitions
        ),
        pm.outer_doall > wl.outer_doall && pm.partitions > wl.partitions,
    );

    // ---------------- EXTRA-SPEEDUP ----------------
    println!("\n[EXTRA-SPEEDUP] rayon execution of the generated schedules");
    for (name, nest) in [("4.1", paper41(0, 299)), ("4.2", paper42(0, 299))] {
        let plan = pdm_core::parallelize(&nest).unwrap();
        let (s, p, sp) = measure_speedup(&nest, &plan, 3);
        claim(
            &format!("loop {name} (300x300) parallel speedup"),
            "> 1 on multicore",
            format!("seq {:.1} ms, par {:.1} ms, x{sp:.2}", s * 1e3, p * 1e3),
            sp > 1.0,
        );
    }

    // ---------------- EXTRA-PARTS ----------------
    println!("\n[EXTRA-PARTS] partition count equals det(H) (Theorem 2)");
    let mut all_ok = true;
    for (name, nest) in pdm_baselines::suite::all(12) {
        let plan = pdm_core::parallelize(&nest).unwrap();
        if let Some(p) = plan.partition() {
            let groups: std::collections::HashSet<_> = nest
                .iterations()
                .unwrap()
                .iter()
                .map(|i| plan.group_of(i).unwrap())
                .collect();
            let per_prefix = groups.len() as i64;
            // Partition offsets realized must divide evenly into groups.
            let ok = per_prefix % p.count() == 0;
            all_ok &= ok;
            println!("    {name}: det = {}, groups = {}", p.count(), groups.len());
        }
    }
    claim("group counts consistent with det(H)", "yes", all_ok, all_ok);

    println!("\ndone.");
}
