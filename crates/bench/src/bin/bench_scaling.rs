//! Write the committed `BENCH_scaling.json` snapshot: thread scaling of
//! the work-stealing scheduler — a 1 → `max(4, machine)` pool ladder on
//! a balanced rectangular nest and a cost-skewed triangular nest
//! (interpreted and compiled, with observed per-region worker counts),
//! plus a stealing-vs-contiguous duel at the widest pool.
//!
//! ```sh
//! cargo run --release -p pdm-bench --bin bench_scaling
//! ```
//!
//! Gated by `bench_check`: `skewed_scaling_speedup` (steal-aware fine
//! chunking vs. one coarse contiguous range per worker on the skewed
//! nest — the workload where idle threads must be able to relieve
//! whoever drew the fat end of the triangle) and the analogous
//! `balanced_scaling_speedup` control.

use pdm_bench::perf;

fn main() {
    println!("bench_scaling: work-stealing thread scaling");
    let cases = perf::scaling_cases();
    let json = perf::scaling_json(&cases);
    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("\nwrote BENCH_scaling.json");
}
