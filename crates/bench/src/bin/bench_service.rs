//! Write the committed `BENCH_service.json` snapshot: the plan-serving
//! storm — 4 concurrent clients firing zipf-distributed mixed
//! `plan`/`instantiate`/`run` requests at a `PlanServer` over real TCP,
//! all 64 shapes raced through the single-flight sharded cache.
//!
//! ```sh
//! cargo run --release -p pdm-bench --bin bench_service
//! ```
//!
//! Gated by `bench_check`: `replan_reduction` (requests per planning
//! run — deterministic) and `service_vs_replan_speedup` (warm cache
//! acquisition vs. fresh symbolic planning, same host, same run).
//! `service_throughput_per_s` is recorded and gated under
//! `BENCH_CHECK_STRICT=1`; this binary refuses to write a snapshot that
//! fails the service-layer acceptance floor outright.

use pdm_bench::perf;

fn main() {
    println!("bench_service: plan-serving zipf storm over TCP");
    let cases = perf::service_cases();
    for c in &cases {
        let throughput = c.requests as f64 / c.elapsed;
        assert!(
            throughput >= 1000.0,
            "{}: {throughput:.0} req/s is below the 1000 req/s service floor",
            c.name
        );
        assert_eq!(c.errors, 0, "{}: storm produced error responses", c.name);
        assert_eq!(
            c.planned, c.shapes as u64,
            "{}: single-flight dedup must plan each shape exactly once",
            c.name
        );
    }
    let json = perf::service_json(&cases);
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("\nwrote BENCH_service.json");
}
