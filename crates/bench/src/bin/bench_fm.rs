//! Measure Fourier–Motzkin redundancy-pruning effectiveness and record
//! the result in `BENCH_fm.json`.
//!
//! ```sh
//! cargo run --release -p pdm-bench --bin bench_fm
//! ```
//!
//! Two case families (see `pdm_bench::perf`):
//!
//! * **plan cases** — the paper's §4.1/§4.2 nests, the 2-D stencil, and
//!   a 4-deep stencil: per-level bound rows with pruning off vs. on,
//!   bound-generation and full-planning wall time;
//! * **elim cases** — skewed boxes and seeded random deep systems
//!   (4–6 variables): peak intermediate constraint count and eliminate
//!   wall time, unpruned vs. exact pruning.
//!
//! The deterministic `rows_reduction` / `peak_reduction` ratios are the
//! metrics the `bench_check` CI gate enforces.

fn main() {
    let (plans, elims) = pdm_bench::perf::fm_cases();
    let out = pdm_bench::perf::fm_json(&plans, &elims);
    std::fs::write("BENCH_fm.json", &out).expect("write BENCH_fm.json");
    println!("wrote BENCH_fm.json");
}
