//! Table 1 reproduction: the related-work comparison, **measured**.
//!
//! The paper's Table 1 compares methods along dependence-information
//! accuracy, parallelism, applicable loop types and code generation.
//! Instead of restating the qualitative table we *run* every implemented
//! method over the common loop suite and print what each one actually
//! extracts — the quantitative counterpart of the same claims.

use pdm_baselines::report::Parallelizer;
use pdm_baselines::suite;

fn main() {
    let methods: Vec<Box<dyn Parallelizer>> = vec![
        Box::new(pdm_baselines::banerjee::Banerjee),
        Box::new(pdm_baselines::dhollander::DHollander),
        Box::new(pdm_baselines::wolf_lam::WolfLam),
        Box::new(pdm_baselines::shang::ShangBdv),
        Box::new(pdm_baselines::pdm_method::PdmMethod),
    ];

    println!("=== Table 1 (measured): method comparison over the loop suite, N = 16 ===\n");
    println!("representations: U = uniform distances, D = direction vectors, B = BDV, P = PDM\n");

    for entry in suite::SUITE {
        let nest = suite::instantiate(entry, 16);
        println!("loop `{}` — {}", entry.name, entry.description);
        for m in &methods {
            let r = m.analyze(&nest).expect("method");
            println!("    {}", r.summary());
        }
        println!();
    }

    // The paper's headline claims, checked on the variable-distance loops.
    println!("--- headline checks ---");
    let p41 = suite::instantiate(&suite::SUITE[0], 16);
    let uniform_only_na = !pdm_baselines::banerjee::Banerjee
        .analyze(&p41)
        .unwrap()
        .applicable;
    pdm_bench::claim(
        "uniform-distance methods inapplicable on variable distances",
        "yes",
        uniform_only_na,
        uniform_only_na,
    );
    let pdm = pdm_baselines::pdm_method::PdmMethod.analyze(&p41).unwrap();
    let wl = pdm_baselines::wolf_lam::WolfLam.analyze(&p41).unwrap();
    pdm_bench::claim(
        "PDM extracts strictly more parallelism than direction vectors (§4.1)",
        "yes",
        format!(
            "pdm: doall={} partitions={} vs wolf-lam: doall={} partitions={}",
            pdm.outer_doall, pdm.partitions, wl.outer_doall, wl.partitions
        ),
        pdm.outer_doall > wl.outer_doall && pdm.partitions > wl.partitions,
    );
    let every_loop_handled = suite::all(16).iter().all(|(_, nest)| {
        pdm_baselines::pdm_method::PdmMethod
            .analyze(nest)
            .map(|r| r.applicable)
            .unwrap_or(false)
    });
    pdm_bench::claim(
        "PDM applicable to every suite loop (uniform is a special case)",
        "yes",
        every_loop_handled,
        every_loop_handled,
    );
}
