//! Figure 3 reproduction: the §4.1 loop after the legal unimodular
//! transformation (Algorithm 1) and Theorem-2 partitioning.
//!
//! The paper's figure shows the transformed space split into **two
//! partitions** whose (shortened) dependence arrows are perpendicular to
//! the parallel axis. We verify and print exactly that: the transformed
//! PDM has a leading zero column (arrows ⟂ y1), the schedule has one
//! outer `doall` plus two partitions, and we render each partition's
//! members in the transformed space.

use pdm_bench::paper41;
use std::collections::BTreeMap;

fn main() {
    let nest = paper41(-10, 10);
    let plan = pdm_core::parallelize(&nest).expect("plan");
    println!("=== Figure 3: Section 4.1 loop after unimodular + partitioning ===\n");
    println!("{}", pdm_core::codegen::render_plan(&nest, &plan).unwrap());

    pdm_bench::claim(
        "doall loops",
        1,
        plan.doall_count(),
        plan.doall_count() == 1,
    );
    pdm_bench::claim(
        "partitions (Figure 3 shows jo2 = 0 and jo2 = 1)",
        2,
        plan.partition_count(),
        plan.partition_count() == 2,
    );

    // Arrows perpendicular to the parallel axis: every transformed
    // distance has zero first component.
    let g = pdm_isdg::build(&nest).expect("ISDG");
    let mut perp = true;
    for e in g.edges() {
        let dy = plan
            .transformed_index(&e.to)
            .unwrap()
            .sub(&plan.transformed_index(&e.from).unwrap())
            .unwrap();
        perp &= dy[0] == 0;
    }
    pdm_bench::claim(
        "dependence arrows perpendicular to parallel axis",
        "yes",
        if perp { "yes" } else { "no" },
        perp,
    );

    // Render each partition's members over the transformed space.
    for o2 in 0..plan.partition_count() {
        println!("\n--- partition offset o2 = {o2} (transformed space y1 -> right, y2 -> up) ---");
        let mut cells: BTreeMap<(i64, i64), char> = BTreeMap::new();
        for it in nest.iterations().unwrap() {
            let y = plan.transformed_index(&it).unwrap();
            let (_, off) = plan.group_of(&it).unwrap();
            if off[0] == o2 {
                cells.insert((y[1], y[0]), '#');
            }
        }
        let (min_y1, max_y1) = cells.keys().fold((i64::MAX, i64::MIN), |(a, b), &(_, y1)| {
            (a.min(y1), b.max(y1))
        });
        let (min_y2, max_y2) = cells.keys().fold((i64::MAX, i64::MIN), |(a, b), &(y2, _)| {
            (a.min(y2), b.max(y2))
        });
        for y2 in (min_y2..=max_y2).rev() {
            print!("{y2:>4} |");
            for y1 in min_y1..=max_y1 {
                print!(
                    "{}",
                    if cells.contains_key(&(y2, y1)) {
                        " #"
                    } else {
                        " ."
                    }
                );
            }
            println!();
        }
    }

    // End-to-end: executing the schedule in parallel is equivalent.
    let rep = pdm_runtime::equivalence::compare(&nest, &plan, 11).expect("exec");
    pdm_bench::claim(
        "parallel execution bit-identical to sequential",
        "yes",
        format!("{} groups, {} iterations", rep.groups, rep.iterations),
        rep.equal,
    );
}
