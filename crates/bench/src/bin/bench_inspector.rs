//! Write the committed `BENCH_inspector.json` snapshot: what the
//! inspector/executor speculation costs and what it buys. Three
//! parametric workloads, one per verdict:
//!
//! 1. a `K`-shifted paper-§4.1 nest whose concrete dependences match
//!    the hull at every valuation — **certified**, runs parallel;
//! 2. a uniform row shift whose hull groups chain at `K = 1` —
//!    **refined**, runs in audited stages;
//! 3. a parity-mixing shift with interleaved touch ranges at `K = 1` —
//!    **rejected**, falls back to the sequential reference.
//!
//! Plus one in-interval valuation storm: 32 distinct valuations inside
//! a single certified stability interval, which must cost exactly one
//! audit.
//!
//! ```sh
//! cargo run --release -p pdm-bench --bin bench_inspector
//! ```
//!
//! Gated by `bench_check`: `inspector_certified_speedup` (forced
//! sequential over certified-parallel), `inspector_audit_overhead`
//! (verdict-cached session throughput over the uninspected path,
//! clamped to 1.0), `refined_compiled_speedup` (interpreted over
//! compiled staged execution), and `interval_skip_ratio` (storm
//! requests answered without auditing). This binary refuses to write a
//! snapshot where certification buys no speedup, steady-state
//! inspection costs more than 5%, compiling the refined stages buys
//! less than 2x, or the storm audits more than once.

use pdm_bench::perf;

fn main() {
    println!("bench_inspector: audit cost vs. replan, verdict-picked executors");
    let cases = perf::inspector_cases();
    for c in &cases {
        if c.verdict == "certified" {
            assert!(
                c.certified_speedup() > 1.0,
                "{}: certified execution ({:.2}ms) is no faster than forced sequential \
                 ({:.2}ms) — the speculation buys nothing on this host",
                c.name,
                c.t_verdict * 1e3,
                c.t_seq * 1e3
            );
        }
        if let Some(s) = &c.steady {
            assert!(
                s.audit_overhead() >= 0.95,
                "{}: verdict-cached session throughput is {:.3}x the uninspected path — \
                 steady-state inspection overhead exceeds the 5% floor",
                c.name,
                s.audit_overhead()
            );
        }
        if let Some(r) = &c.refined {
            assert!(
                r.refined_compiled_speedup() >= 2.0,
                "{}: compiled staged execution ({:.2}ms) is only {:.2}x the interpreted \
                 walker ({:.2}ms) — below the 2x floor",
                c.name,
                r.t_compiled * 1e3,
                r.refined_compiled_speedup(),
                r.t_interpreted * 1e3,
            );
        }
    }
    let storm = perf::inspector_storm();
    assert_eq!(
        storm.audits, 1,
        "in-interval storm took {} audits for {} requests — interval \
         certification is not short-circuiting the inspector",
        storm.audits, storm.requests,
    );
    let json = perf::inspector_json(&cases, &storm);
    std::fs::write("BENCH_inspector.json", &json).expect("write BENCH_inspector.json");
    println!("\nwrote BENCH_inspector.json");
}
