//! Figure 2 reproduction: ISDG of the (reconstructed) §4.1 loop, N = 10.
//!
//! The paper plots the iteration space over −10..10 on both axes, marks
//! dependent iterations (solid) vs independent (empty), numbers the
//! dependence chains, and draws the variable-stride arrows. We print the
//! same content: an ASCII grid with per-chain digits, the distance
//! histogram (all multiples of (2,2) — the variable distances), and the
//! chain metrics.

use pdm_bench::paper41;
use pdm_isdg::metrics::metrics;
use pdm_isdg::render::{ascii_grid, distance_histogram};

fn main() {
    let nest = paper41(-10, 10);
    let g = pdm_isdg::build(&nest).expect("ISDG");
    println!("=== Figure 2: ISDG of the original Section 4.1 loop (N = 10) ===\n");
    println!("{}", pdm_loopir::pretty::render(&nest));
    println!("{}", ascii_grid(&g));
    let m = metrics(&g);
    println!("iterations       : {}", m.iterations);
    println!("dependent        : {}", m.dependent);
    println!("independent      : {}", m.independent);
    println!("direct edges     : {}", m.edges);
    println!("chains/components: {}", m.components);
    println!("critical path    : {}", m.critical_path);
    println!("avg parallelism  : {:.2}", m.avg_parallelism);
    println!("\ndistance histogram (variable distances, all in L([[2,2]])):");
    for (d, c) in distance_histogram(&g) {
        println!("  d = {d:?}  x{c}");
    }
    let analysis = pdm_core::analyze(&nest).expect("analysis");
    println!("\nPDM:\n{}", analysis.pdm());
    pdm_bench::claim(
        "variable (non-uniform) distances",
        "yes",
        format!("{}", !analysis.is_uniform()),
        !analysis.is_uniform(),
    );
    pdm_bench::claim(
        "all distances in PDM lattice",
        "yes",
        "verified",
        g.distances()
            .iter()
            .all(|d| analysis.lattice().unwrap().contains(d).unwrap()),
    );
}
