//! Measure compiled-engine vs. interpreter iteration throughput and
//! record the result in `BENCH_runtime.json`.
//!
//! ```sh
//! cargo run --release -p pdm-bench --bin bench_runtime
//! ```
//!
//! Cases: the paper's §4.1 and §4.2 nests and a classic 2-D stencil.
//! Every timed executor is first verified against the sequential
//! reference; the JSON reports best-of-N iteration throughput and the
//! compiled/interpreted speedup, sequentially and in parallel.

use pdm_bench::{paper41, paper42, time};
use pdm_loopir::nest::LoopNest;
use pdm_loopir::parse::parse_loop_with;
use pdm_runtime::compile::{CompiledNest, CompiledPlan};
use pdm_runtime::equivalence::compare_three_way;
use pdm_runtime::memory::Memory;

const REPS: usize = 5;

struct Case {
    name: &'static str,
    iterations: u64,
    interp_seq: f64,
    compiled_seq: f64,
    interp_par: f64,
    compiled_par: f64,
}

fn best<F: FnMut() -> u64>(reps: usize, mut f: F) -> f64 {
    let mut bestt = f64::INFINITY;
    for _ in 0..reps {
        let (_, t) = time(&mut f);
        bestt = bestt.min(t);
    }
    bestt
}

fn run_case(name: &'static str, nest: &LoopNest) -> Case {
    let plan = pdm_core::parallelize(nest).expect("plan");
    let rep = compare_three_way(nest, &plan, 1).expect("execute");
    assert!(
        rep.all_equal(),
        "{name}: executors diverged — refusing to time"
    );
    let iterations = rep.iterations;

    let mut m = Memory::for_nest(nest).expect("alloc");
    m.init_deterministic(1);

    let interp_seq = best(REPS, || pdm_runtime::run_sequential(nest, &m).unwrap());
    let compiled = CompiledNest::compile(nest, &m).expect("compile nest");
    let mut scratch = compiled.new_scratch();
    let compiled_seq = best(REPS, || {
        compiled.run_with_scratch(&m, &mut scratch).unwrap()
    });
    let interp_par = best(REPS, || pdm_runtime::run_parallel(nest, &plan, &m).unwrap());
    let cplan = CompiledPlan::compile(nest, &plan, &m).expect("compile plan");
    let compiled_par = best(REPS, || cplan.run_parallel(&m).unwrap());

    Case {
        name,
        iterations,
        interp_seq,
        compiled_seq,
        interp_par,
        compiled_par,
    }
}

fn main() {
    let stencil = parse_loop_with(
        "for i = 1..N { for j = 1..N { A[i, j] = A[i - 1, j] + A[i, j - 1]; } }",
        &[("N", 200)],
    )
    .unwrap();
    let cases = [
        run_case("paper41_n200", &paper41(0, 199)),
        run_case("paper42_n200", &paper42(0, 199)),
        run_case("stencil_n200", &stencil),
    ];

    let mut out = String::from("{\n  \"bench\": \"compiled_vs_interp\",\n");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.push_str(&format!("  \"threads\": {threads},\n  \"cases\": [\n"));
    for (i, c) in cases.iter().enumerate() {
        let tp = |secs: f64| c.iterations as f64 / secs;
        let seq_speedup = c.interp_seq / c.compiled_seq;
        let par_speedup = c.interp_par / c.compiled_par;
        println!(
            "{:<14} seq {:>10.0} -> {:>11.0} iters/s ({:4.1}x)   par {:>10.0} -> {:>11.0} iters/s ({:4.1}x)",
            c.name,
            tp(c.interp_seq),
            tp(c.compiled_seq),
            seq_speedup,
            tp(c.interp_par),
            tp(c.compiled_par),
            par_speedup,
        );
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iterations\": {}, \
             \"interp_seq_iters_per_s\": {:.0}, \"compiled_seq_iters_per_s\": {:.0}, \
             \"interp_par_iters_per_s\": {:.0}, \"compiled_par_iters_per_s\": {:.0}, \
             \"seq_speedup\": {:.2}, \"par_speedup\": {:.2}}}{}\n",
            c.name,
            c.iterations,
            tp(c.interp_seq),
            tp(c.compiled_seq),
            tp(c.interp_par),
            tp(c.compiled_par),
            seq_speedup,
            par_speedup,
            if i + 1 == cases.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_runtime.json", &out).expect("write BENCH_runtime.json");
    println!("wrote BENCH_runtime.json");
}
