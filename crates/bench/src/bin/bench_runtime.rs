//! Measure compiled-engine vs. interpreter iteration throughput and
//! record the result in `BENCH_runtime.json`.
//!
//! ```sh
//! cargo run --release -p pdm-bench --bin bench_runtime
//! ```
//!
//! Cases: the paper's §4.1 and §4.2 nests and a classic 2-D stencil.
//! Every timed executor is first verified against the sequential
//! reference; the JSON reports best-of-N iteration throughput and the
//! compiled/interpreted speedup, sequentially and in parallel. The
//! measurement itself lives in `pdm_bench::perf` so the `bench_check`
//! regression gate can rerun it without touching this file's output.

fn main() {
    let cases = pdm_bench::perf::runtime_cases();
    let out = pdm_bench::perf::runtime_json(&cases);
    std::fs::write("BENCH_runtime.json", &out).expect("write BENCH_runtime.json");
    println!("wrote BENCH_runtime.json");
}
