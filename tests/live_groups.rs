//! Allocation-spike regression test for the streaming schedulers.
//!
//! `GroupSpec` / `CompiledGroup` construction is instrumented with a
//! process-wide live/peak gauge (`pdm_runtime::schedule`). On a depth-4
//! all-doall nest with ≥ 10⁵ groups, materializing must spike the gauge
//! to the full group count, while the streaming executors stay at
//! `O(threads × chunks_per_thread)` — the compiled path constructs no
//! group structs at all. Kept as a single `#[test]` in its own binary so
//! no concurrently-running test pollutes the process-wide gauge.

use vardep_loops::core::{parallelize, parallelize_program};
use vardep_loops::loopir::parse::{parse_imperfect, parse_loop};
use vardep_loops::runtime::schedule::{live_groups, peak_live_groups, reset_peak_live_groups};
use vardep_loops::runtime::{CompiledPlan, Memory};

#[test]
fn streaming_replaces_the_group_materialization_spike() {
    // 18^4 = 104 976 groups, every level doall.
    let nest = parse_loop(
        "for a = 0..=17 { for b = 0..=17 { for c = 0..=17 { for d = 0..=17 {
           A[a, b, c, d] = a + 2*b + 3*c + d;
         } } } }",
    )
    .unwrap();
    let plan = parallelize(&nest).unwrap();
    assert_eq!(plan.doall_count(), 4, "nest must be fully parallel");
    let total = vardep_loops::runtime::exec::group_count(&plan).unwrap();
    assert_eq!(total, 18u64.pow(4));
    assert!(total >= 100_000);

    let mem = Memory::for_nest(&nest).unwrap();
    let cp = CompiledPlan::compile(&nest, &plan, &mem).unwrap();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let streaming_bound = (threads * pdm_runtime::RuntimeConfig::global().chunks_per_thread) as i64;

    // 1. Materializing spikes to the full group count.
    reset_peak_live_groups();
    let base = live_groups();
    let gs = cp.groups().unwrap();
    assert_eq!(gs.len() as u64, total);
    assert!(
        peak_live_groups() - base >= total as i64,
        "materialized peak {} must reach the group count {total}",
        peak_live_groups() - base,
    );
    drop(gs);
    assert_eq!(live_groups(), base, "materialized groups must all drop");

    // 2. Compiled streaming execution constructs zero group structs.
    reset_peak_live_groups();
    let count = cp.run_parallel(&mem).unwrap();
    assert_eq!(count, total);
    assert_eq!(
        peak_live_groups(),
        base,
        "compiled streaming run must not construct any group structs"
    );

    // 3. Interpreted streaming execution holds at most one GroupSpec per
    //    in-flight range.
    reset_peak_live_groups();
    let count = vardep_loops::runtime::exec::run_parallel(&nest, &plan, &mem).unwrap();
    assert_eq!(count, total);
    let interp_peak = peak_live_groups() - base;
    assert!(
        interp_peak >= 1 && interp_peak <= streaming_bound,
        "interpreted streaming peak {interp_peak} exceeds \
         threads × chunks_per_thread = {streaming_bound}"
    );

    // 4. The checked executor streams too.
    reset_peak_live_groups();
    let count = vardep_loops::runtime::checked::run_parallel_checked(&nest, &plan, &mem).unwrap();
    assert_eq!(count, total);
    let checked_peak = peak_live_groups() - base;
    assert!(
        checked_peak <= streaming_bound,
        "checked streaming peak {checked_peak} exceeds {streaming_bound}"
    );

    // 5. Multi-kernel (imperfect) programs: the gauge never
    //    double-counts across kernel barriers — every stage drains its
    //    transient groups before the next one starts, so the peak stays
    //    within the single-stage streaming bound and the live count
    //    returns exactly to base after each staged run.
    let imp = parse_imperfect(
        "for a = 0..=17 {
           B[a, 0, 0, 0] = a;
           for b = 0..=17 { for c = 0..=17 { for d = 0..=17 {
             A[a, b, c, d] = B[a, 0, 0, 0] + 2*b + 3*c + d;
           } } }
         }",
    )
    .unwrap();
    let pp = parallelize_program(&imp).unwrap();
    assert!(pp.kernel_count() >= 2, "program must be multi-kernel");
    assert!(pp.barrier_count() >= 1, "program must cross a barrier");
    let pmem = vardep_loops::runtime::Memory::for_imperfect(&imp).unwrap();

    // Compiled staged execution constructs zero group structs, across
    // every stage.
    reset_peak_live_groups();
    let cp = vardep_loops::runtime::CompiledProgram::compile(&pp, &pmem).unwrap();
    cp.run_parallel(&pmem).unwrap();
    assert_eq!(
        peak_live_groups(),
        base,
        "compiled staged run must not construct any group structs"
    );
    assert_eq!(live_groups(), base, "compiled staged run leaked groups");

    // Interpreted staged execution stays within the one-stage bound:
    // a barrier that failed to drain its stage's transient groups
    // (double-counting across kernels) would push the peak past it.
    reset_peak_live_groups();
    vardep_loops::runtime::run_program_parallel(&pp, &pmem).unwrap();
    let staged_peak = peak_live_groups() - base;
    assert!(
        staged_peak <= streaming_bound,
        "staged interpreted peak {staged_peak} exceeds the per-stage bound \
         {streaming_bound} — groups double-counted across a kernel barrier"
    );
    assert_eq!(live_groups(), base, "staged interpreted run leaked groups");

    // The program-level checked executor streams one group at a time
    // per kernel and also drains completely.
    reset_peak_live_groups();
    vardep_loops::runtime::checked::run_program_parallel_checked(&pp, &pmem).unwrap();
    let checked_staged_peak = peak_live_groups() - base;
    assert!(
        checked_staged_peak <= streaming_bound,
        "checked staged peak {checked_staged_peak} exceeds {streaming_bound}"
    );
    assert_eq!(live_groups(), base, "checked staged run leaked groups");

    // 6. The refined executors stream too. A parametric row-shift nest
    //    audits to Refined (18 stages × 18 groups); the interpreted
    //    stage walker must reach each group through seeked cursors —
    //    never a materialized table — and the compiled stage driver
    //    constructs no group structs at all.
    let template = vardep_loops::core::plan_template(
        &vardep_loops::loopir::parse::parse_loop_symbolic(
            "for i1 = 0..=17 { for i2 = 0..=17 {
               A[i1 + K, i2] = A[i1, i2] + 1;
             } }",
            &["K"],
        )
        .unwrap(),
    )
    .unwrap();
    let vals = [("K", 1i64)];
    let rplan = template.instantiate(&vals).unwrap();
    let rnest = template.instantiate_nest(&vals).unwrap();
    let verdict = vardep_loops::runtime::inspector::audit(&rnest, &rplan).unwrap();
    let stages = match &verdict {
        vardep_loops::runtime::Verdict::Refined { stages } => stages.clone(),
        other => panic!("row-shift nest must refine, got {other:?}"),
    };
    let rtotal = 18u64 * 18;
    let rmem = Memory::for_nest(&rnest).unwrap();

    reset_peak_live_groups();
    let count =
        vardep_loops::runtime::inspector::run_refined(&rnest, &rplan, &rmem, &stages).unwrap();
    assert_eq!(count, rtotal);
    let refined_peak = peak_live_groups() - base;
    assert!(
        refined_peak >= 1 && refined_peak <= streaming_bound,
        "interpreted refined peak {refined_peak} exceeds \
         threads × chunks_per_thread = {streaming_bound}"
    );
    assert_eq!(live_groups(), base, "interpreted refined run leaked groups");

    let rcp = CompiledPlan::compile(&rnest, &rplan, &rmem).unwrap();
    reset_peak_live_groups();
    let count = vardep_loops::runtime::inspector::run_refined_compiled(
        &rcp,
        &rmem,
        &stages,
        pdm_runtime::RuntimeConfig::global().schedule(),
    )
    .unwrap();
    assert_eq!(count, rtotal);
    assert_eq!(
        peak_live_groups(),
        base,
        "compiled refined run must not construct any group structs"
    );
}
