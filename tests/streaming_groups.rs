//! Property tests for the streaming group enumerator.
//!
//! The oracle is the *historical* materializing algorithm (the full
//! doall-prefix cross product, reimplemented here independently of the
//! library): on >100 random nests the [`GroupCursor`] must yield exactly
//! the same sequence — same multiset, same lexicographic prefix-major /
//! offset-minor order — and `seek(k)` must agree with `k` advances from
//! the start. `group_count` is pinned to the oracle's length on every
//! nest, covering both the arithmetic fast path and the cursor-walk
//! fallback for prefix-dependent bounds.

//! The generator only emits rectangular nests, so the proptests below
//! exercise `seek(k)`'s prefix-dependent fallback rarely and never at
//! hand-picked positions; the explicit tests at the bottom pin the edge
//! cases — triangular (prefix-dependent) bounds at `k = 0`,
//! `k = group_count − 1`, one past the end, and empty iteration spaces.

use proptest::prelude::*;
use vardep_loops::core::parallelize;
use vardep_loops::loopir::generator::{random_nest, GenConfig};
use vardep_loops::loopir::parse::parse_loop_with;
use vardep_loops::prelude::*;
use vardep_loops::runtime::exec;
use vardep_loops::runtime::schedule::{group_count, plan_range_tasks, GroupCursor, Schedule};

/// The pre-streaming enumeration, kept as an independent oracle: build
/// every prefix level by level, then cross with the offset table.
fn materialized_oracle(plan: &ParallelPlan) -> Vec<(Vec<i64>, usize)> {
    let z = plan.doall_count();
    let mut prefixes: Vec<Vec<i64>> = vec![Vec::new()];
    for k in 0..z {
        let mut next = Vec::new();
        for p in &prefixes {
            let (lo, hi) = plan.bounds().range(k, p).unwrap();
            for v in lo..=hi {
                let mut q = p.clone();
                q.push(v);
                next.push(q);
            }
        }
        prefixes = next;
    }
    let num_offsets = plan.partition().map_or(1, |p| p.offsets().len());
    let mut out = Vec::with_capacity(prefixes.len() * num_offsets);
    for p in prefixes {
        for o in 0..num_offsets {
            out.push((p.clone(), o));
        }
    }
    out
}

fn plan_for_seed(seed: u64) -> ParallelPlan {
    let cfg = GenConfig {
        depth: 1 + (seed as usize % 3),
        extent: 4 + (seed as i64 % 5),
        stmts: 1 + (seed as usize % 2),
        arrays: 1 + (seed as usize % 2),
        ..GenConfig::default()
    };
    let nest = random_nest(seed, &cfg).expect("generator");
    parallelize(&nest).expect("plan")
}

fn cursor_sequence(plan: &ParallelPlan) -> Vec<(Vec<i64>, usize)> {
    let num_offsets = plan.partition().map_or(1, |p| p.offsets().len());
    let mut cur = GroupCursor::new(plan.bounds(), plan.doall_count(), num_offsets).unwrap();
    let mut out = Vec::new();
    while let Some((prefix, o)) = cur.current() {
        out.push((prefix.to_vec(), o));
        if !cur.advance().unwrap() {
            break;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(130))]

    /// Cursor sequence == materialized cross product, order included.
    #[test]
    fn cursor_matches_materialized_oracle(seed in 0u64..1_000_000) {
        let plan = plan_for_seed(seed);
        let oracle = materialized_oracle(&plan);
        let streamed = cursor_sequence(&plan);
        prop_assert_eq!(&streamed, &oracle, "cursor diverged from oracle");
        // Prefixes must be lexicographically non-decreasing
        // (offset-minor within equal prefixes).
        for w in streamed.windows(2) {
            prop_assert!(
                w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1),
                "order violation: {:?} then {:?}", w[0], w[1]
            );
        }
        // And the arithmetic/walk count must agree without enumerating.
        prop_assert_eq!(exec::group_count(&plan).unwrap(), oracle.len() as u64);
        // The library shim stays faithful to the oracle too.
        let shim = exec::groups(&plan).unwrap();
        prop_assert_eq!(shim.len(), oracle.len());
        for (g, (p, _)) in shim.iter().zip(&oracle) {
            prop_assert_eq!(&g.prefix, p);
        }
    }

    /// `seek(k)` lands exactly where `k` advances from the start land.
    #[test]
    fn seek_agrees_with_nth(seed in 0u64..1_000_000) {
        let plan = plan_for_seed(seed);
        let num_offsets = plan.partition().map_or(1, |p| p.offsets().len());
        let z = plan.doall_count();
        let all = cursor_sequence(&plan);
        let total = all.len() as u64;
        // A handful of deterministic pseudo-random positions per nest,
        // plus the boundaries.
        let mut picks = vec![0u64, total / 2, total.saturating_sub(1)];
        for i in 0..4u64 {
            if total > 0 {
                picks.push((seed.wrapping_mul(6364136223846793005).wrapping_add(i * 1442695040888963407)) % total);
            }
        }
        for &k in &picks {
            if k >= total {
                continue;
            }
            let mut cur = GroupCursor::new(plan.bounds(), z, num_offsets).unwrap();
            prop_assert!(cur.seek(k).unwrap(), "seek({k}) of {total} failed");
            let (p, o) = cur.current().unwrap();
            prop_assert_eq!((p.to_vec(), o), all[k as usize].clone(), "seek({}) mismatch", k);
            prop_assert_eq!(cur.position(), k);
            // The cursor must continue correctly after a seek.
            if cur.advance().unwrap() {
                let (p, o) = cur.current().unwrap();
                prop_assert_eq!((p.to_vec(), o), all[k as usize + 1].clone());
            } else {
                prop_assert_eq!(k + 1, total, "premature exhaustion after seek({})", k);
            }
        }
        // Seeking past the end exhausts cleanly.
        let mut cur = GroupCursor::new(plan.bounds(), z, num_offsets).unwrap();
        prop_assert!(!cur.seek(total).unwrap());
        prop_assert!(cur.current().is_none());
    }

    /// Cursor-clone range splitting ([`plan_range_tasks`]) agrees with
    /// `seek`: every planned task starts exactly where an independent
    /// seek to its start index lands, and the tasks' walked groups
    /// concatenate to the full cursor sequence — no gap, no overlap.
    #[test]
    fn planned_tasks_agree_with_seek(seed in 0u64..1_000_000, threads in 1usize..5) {
        let plan = plan_for_seed(seed);
        let num_offsets = plan.partition().map_or(1, |p| p.offsets().len());
        let z = plan.doall_count();
        let all = cursor_sequence(&plan);
        let sched = Schedule::from_env_value(None, None);
        let tasks = plan_range_tasks(plan.bounds(), z, num_offsets, &sched, threads).unwrap();

        let mut walked: Vec<(u64, Vec<i64>, usize)> = Vec::new();
        let mut next_start = 0u64;
        for task in &tasks {
            // Contiguous, non-empty partition of 0..total.
            prop_assert_eq!(task.start(), next_start);
            prop_assert!(task.start() < task.end());
            next_start = task.end();
            // The planned (clone-positioned) start agrees with seek.
            let mut cur = GroupCursor::new(plan.bounds(), z, num_offsets).unwrap();
            prop_assert!(cur.seek(task.start()).unwrap());
            let (p, o) = cur.current().unwrap();
            prop_assert_eq!(
                (p.to_vec(), o),
                all[task.start() as usize].clone(),
                "seek({}) oracle mismatch", task.start()
            );
            task.for_each(|gid, prefix, off| {
                walked.push((gid, prefix.to_vec(), off));
                Ok(())
            }).unwrap();
        }
        prop_assert_eq!(next_start, all.len() as u64, "tasks must cover the space");
        prop_assert_eq!(walked.len(), all.len());
        for (i, ((gid, p, o), (ep, eo))) in walked.iter().zip(&all).enumerate() {
            prop_assert_eq!(*gid, i as u64);
            prop_assert_eq!((p, *o), (ep, *eo), "group {} diverged", i);
        }
    }
}

/// A fully-parallel triangular nest: `z == depth`, prefix-dependent
/// inner bound, one offset.
fn triangular_plan(n: i64) -> ParallelPlan {
    let nest = parse_loop_with(
        "for i = 0..=N { for j = 0..=i { A[i, j] = i + j; } }",
        &[("N", n)],
    )
    .unwrap();
    let plan = parallelize(&nest).unwrap();
    assert_eq!(plan.doall_count(), 2, "triangle must be all-doall");
    plan
}

/// `seek(k)` edge positions on prefix-dependent (triangular) bounds:
/// first group, last group, one past the end, and far past the end —
/// the positions the generator-driven proptest never pins by hand.
#[test]
fn seek_edges_on_triangular_bounds() {
    let plan = triangular_plan(8);
    let z = plan.doall_count();
    let total = group_count(plan.bounds(), z, 1).unwrap();
    assert_eq!(total, 45, "1 + 2 + … + 9 prefixes");

    // k = 0: the first group, identical to a fresh cursor.
    let mut cur = GroupCursor::new(plan.bounds(), z, 1).unwrap();
    assert!(cur.seek(0).unwrap());
    assert_eq!(cur.current().unwrap(), (&[0i64, 0][..], 0));
    assert_eq!(cur.position(), 0);

    // k = group_count − 1: the last group; advancing exhausts.
    let mut cur = GroupCursor::new(plan.bounds(), z, 1).unwrap();
    assert!(cur.seek(total - 1).unwrap());
    assert_eq!(cur.current().unwrap(), (&[8i64, 8][..], 0));
    assert!(!cur.advance().unwrap());
    assert!(cur.is_exhausted());

    // k = group_count: one past the end exhausts without panicking.
    let mut cur = GroupCursor::new(plan.bounds(), z, 1).unwrap();
    assert!(!cur.seek(total).unwrap());
    assert!(cur.current().is_none());

    // Far past the end behaves the same.
    let mut cur = GroupCursor::new(plan.bounds(), z, 1).unwrap();
    assert!(!cur.seek(total + 1_000).unwrap());
    assert!(cur.current().is_none());
}

/// The same edges with a non-trivial offset table crossed in (offset
/// indices decompose `k` as `prefix_ordinal × num_offsets + offset`).
#[test]
fn seek_edges_on_triangular_bounds_with_offsets() {
    let plan = triangular_plan(6);
    let z = plan.doall_count();
    let noff = 3usize;
    let total = group_count(plan.bounds(), z, noff).unwrap();
    assert_eq!(total, 28 * 3);

    let mut cur = GroupCursor::new(plan.bounds(), z, noff).unwrap();
    assert!(cur.seek(0).unwrap());
    assert_eq!(cur.current().unwrap(), (&[0i64, 0][..], 0));

    let mut cur = GroupCursor::new(plan.bounds(), z, noff).unwrap();
    assert!(cur.seek(total - 1).unwrap());
    assert_eq!(cur.current().unwrap(), (&[6i64, 6][..], noff - 1));
    assert!(!cur.advance().unwrap());

    let mut cur = GroupCursor::new(plan.bounds(), z, noff).unwrap();
    assert!(!cur.seek(total).unwrap());
    assert!(cur.current().is_none());
}

/// Empty iteration spaces: zero groups, an immediately-exhausted
/// cursor, and `seek` returning `false` at every position including 0.
#[test]
fn empty_iteration_space_nests() {
    for (src, n) in [
        // Outer range empty.
        ("for i = 0..N { A[i] = i; }", 0i64),
        ("for i = 0..N { A[i] = i; }", -4),
        // Outer nonempty, *every* inner triangular range empty.
        ("for i = 2..N { for j = i..=1 { A[i, j] = 1; } }", 5),
    ] {
        let nest = parse_loop_with(src, &[("N", n)]).unwrap();
        let plan = parallelize(&nest).unwrap();
        let noff = plan.partition().map_or(1, |p| p.offsets().len());
        let z = plan.doall_count();
        let total = group_count(plan.bounds(), z, noff).unwrap();
        assert_eq!(total, 0, "{src} N={n}");
        let mut cur = GroupCursor::new(plan.bounds(), z, noff).unwrap();
        assert!(cur.current().is_none(), "{src} N={n}");
        assert!(!cur.advance().unwrap());
        for k in [0u64, 1, 7] {
            let mut cur = GroupCursor::new(plan.bounds(), z, noff).unwrap();
            assert!(!cur.seek(k).unwrap(), "{src} N={n} seek({k})");
            assert!(cur.is_exhausted());
        }
        // And the executors agree there is nothing to do.
        let mem = Memory::for_nest(&nest).unwrap();
        assert_eq!(run_parallel(&nest, &plan, &mem).unwrap(), 0);
    }
}
