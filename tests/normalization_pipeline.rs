//! Normalized (non-unit-step) loops through the whole pipeline.

use vardep_loops::core::{analyze, parallelize};
use vardep_loops::loopir::parse::parse_loop;
use vardep_loops::prelude::*;

#[test]
fn stepped_loops_parallelize_and_execute() {
    for src in [
        "for i = 0..=40 step 2 { A[i] = A[i] + 1; }",
        "for i = 2..=40 step 2 { A[i] = A[i - 2] + 1; }",
        "for i = 0..=20 step 2 { for j = 0..=20 step 3 { A[i, j] = A[i, j] + 1; } }",
        "for i = 3..=30 step 3 { A[2*i] = A[i] + 1; }",
    ] {
        let nest = parse_loop(src).unwrap();
        let plan = parallelize(&nest).unwrap();
        let rep = vardep_loops::runtime::equivalence::compare(&nest, &plan, 5)
            .unwrap_or_else(|e| panic!("{src}: {e}"));
        assert!(rep.equal, "{src}");
    }
}

#[test]
fn normalization_preserves_dependence_structure() {
    // Stride-2 chain over evens == unit chain after normalization:
    // fully sequential (PDM [1] in normalized space).
    let nest = parse_loop("for i = 2..=40 step 2 { A[i] = A[i - 2] + 1; }").unwrap();
    let a = analyze(&nest).unwrap();
    assert_eq!(a.pdm(), &IMat::from_rows(&[vec![1]]).unwrap());
    let plan = parallelize(&nest).unwrap();
    assert_eq!(plan.doall_count(), 0);
    assert_eq!(plan.partition_count(), 1);
}

#[test]
fn stepped_independent_loop_fully_parallel() {
    // Writes to disjoint strided cells with no reads: fully parallel.
    let nest = parse_loop("for i = 0..=30 step 3 { A[i] = i; }").unwrap();
    let plan = parallelize(&nest).unwrap();
    assert!(plan.is_fully_parallel());
    // 11 iterations at i' = 0..=10.
    assert_eq!(nest.iterations().unwrap().len(), 11);
}

#[test]
fn stepped_loop_equals_manual_normalization() {
    // `for i = 1..=9 step 2 { A[i] = A[i-2] + 1 }` must equal the
    // hand-normalized `for k = 0..=4 { A[2k+1] = A[2k-1] + 1 }`.
    let auto = parse_loop("for i = 1..=9 step 2 { A[i] = A[i - 2] + 1; }").unwrap();
    let manual = parse_loop("for k = 0..=4 { A[2*k + 1] = A[2*k - 1] + 1; }").unwrap();
    // Same dependence structure:
    let a1 = analyze(&auto).unwrap();
    let a2 = analyze(&manual).unwrap();
    assert_eq!(a1.pdm(), a2.pdm());
    // Same cells touched in the same order:
    let cells = |nest: &LoopNest| -> Vec<Vec<i64>> {
        nest.iterations()
            .unwrap()
            .iter()
            .map(|it| nest.body()[0].lhs.access.eval(it).unwrap().0.clone())
            .collect()
    };
    assert_eq!(cells(&auto), cells(&manual));
}
