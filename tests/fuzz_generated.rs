//! Fuzz-style integration sweep: hundreds of generator-produced nests,
//! each pushed through the complete pipeline with all three validators
//! (PDM coverage, ISDG schedule check, execution equivalence).
//!
//! Distinct from `tests/random_loops.rs` (proptest, shrinkable cases):
//! this sweep uses the deterministic library generator so failures
//! reproduce from a seed alone, covers depths 1–3 and multi-statement
//! bodies, and runs more total cases.

use vardep_loops::core::{analyze, parallelize};
use vardep_loops::loopir::generator::{random_nest, GenConfig};

fn validate_seed(seed: u64, cfg: &GenConfig) {
    let nest = random_nest(seed, cfg).expect("generator produces valid nests");
    let analysis = analyze(&nest).unwrap_or_else(|e| panic!("seed {seed}: analyze: {e}"));
    let plan = parallelize(&nest).unwrap_or_else(|e| panic!("seed {seed}: plan: {e}"));

    // 1. Lattice covers ground truth.
    let g = vardep_loops::isdg::graph::build_all_pairs(&nest, 500_000)
        .unwrap_or_else(|e| panic!("seed {seed}: isdg: {e}"));
    let lat = analysis.lattice().unwrap();
    for d in g.distances() {
        assert!(
            lat.contains(&d).unwrap(),
            "seed {seed}: distance {d} escapes the PDM"
        );
    }

    // 2. Schedule sound against every edge.
    let report = vardep_loops::isdg::validate::validate_plan(&g, &plan).unwrap();
    assert!(
        report.is_sound(),
        "seed {seed}: violations {:?}",
        report.violations
    );

    // 3. Parallel execution equivalent.
    let rep = vardep_loops::runtime::equivalence::compare(&nest, &plan, seed).unwrap();
    assert!(rep.equal, "seed {seed}: execution diverged");
}

#[test]
fn sweep_depth1() {
    let cfg = GenConfig {
        depth: 1,
        extent: 14,
        ..GenConfig::default()
    };
    for seed in 0..120 {
        validate_seed(seed, &cfg);
    }
}

#[test]
fn sweep_depth2() {
    let cfg = GenConfig {
        depth: 2,
        extent: 6,
        ..GenConfig::default()
    };
    for seed in 0..80 {
        validate_seed(seed, &cfg);
    }
}

#[test]
fn sweep_depth3_small() {
    let cfg = GenConfig {
        depth: 3,
        extent: 3,
        coeff: 2,
        offset: 3,
        ..GenConfig::default()
    };
    for seed in 0..40 {
        validate_seed(seed, &cfg);
    }
}

#[test]
fn sweep_multi_statement_two_arrays() {
    let cfg = GenConfig {
        depth: 2,
        extent: 5,
        stmts: 2,
        arrays: 2,
        ..GenConfig::default()
    };
    for seed in 0..60 {
        validate_seed(seed, &cfg);
    }
}
