//! Fault-hardening integration tests: a real [`PlanServer`] on a real
//! TCP socket, abused the way production abuses servers — malformed
//! frames, injected panics (via the `pdm_service::faults` probes), torn
//! responses, dropped sockets — and expected to keep serving through
//! all of it.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use vardep_loops::service::wire::{self, Frame};
use vardep_loops::service::{faults, json};
use vardep_loops::{Faults, PlanServer, ServiceClient, Session};

/// The §4.1-style symbolic shape used throughout: one parameter N.
const SHAPE_SOURCE: &str = "for i1 = 0..N { for i2 = 0..N {
   A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
 } }";

fn plan_request() -> String {
    format!(
        r#"{{"op":"plan","source":{},"params":["N"]}}"#,
        json::render(&json::Json::Str(SHAPE_SOURCE.into()))
    )
}

fn run_request(deadline_ms: u64) -> String {
    format!(
        r#"{{"op":"run","source":{},"params":["N"],"values":{{"N":8}},"seed":1,"deadline_ms":{deadline_ms}}}"#,
        json::render(&json::Json::Str(SHAPE_SOURCE.into()))
    )
}

fn start_server(
    session: Arc<Session>,
    workers: usize,
) -> (
    std::net::SocketAddr,
    Arc<vardep_loops::service::wire::ShutdownFlag>,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = PlanServer::bind("127.0.0.1:0", session, workers).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    let flag = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.serve());
    (addr, flag, handle)
}

fn patient_client(addr: std::net::SocketAddr) -> ServiceClient {
    ServiceClient::builder()
        .read_timeout(Duration::from_secs(30))
        .connect(addr)
        .expect("connect")
}

/// Malformed wire input — oversize headers, zero-length frames, torn
/// frames, garbage JSON — must produce an in-band error or a clean
/// close, never a handler panic and never a wedged server.
#[test]
fn wire_edge_cases_never_kill_the_server() {
    let session = Arc::new(Session::builder().cache_capacity(4, 16).threads(1).build());
    let (addr, flag, handle) = start_server(Arc::clone(&session), 3);

    // Case 1: header claiming more than MAX_FRAME. The server must
    // refuse and close; a subsequent read sees EOF, not a hang.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        s.write_all(&((wire::MAX_FRAME as u32) + 1).to_be_bytes())
            .unwrap();
        expect_clean_close(&mut s);
    }

    // Case 2: zero-length frame — an empty JSON document. In-band
    // protocol error, connection stays usable.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        s.write_all(&0u32.to_be_bytes()).unwrap();
        let body = read_message(&mut s);
        assert_eq!(body.get_str("kind"), Some("protocol"), "{body:?}");
    }

    // Case 3: garbage JSON payload — in-band protocol error.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        wire::write_frame(&mut s, "{\"op\": \x01\x02 garbage").unwrap();
        let body = read_message(&mut s);
        assert_eq!(body.get_str("kind"), Some("protocol"), "{body:?}");
    }

    // Case 4: torn frame — header promises 100 bytes, 10 arrive, then
    // the client vanishes. The handler must notice the close and exit.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&100u32.to_be_bytes()).unwrap();
        s.write_all(b"0123456789").unwrap();
        drop(s);
    }

    // Through all of it: zero panics, and a fresh connection plans and
    // runs normally.
    let mut client = patient_client(addr);
    let body = client.call(&run_request(60_000)).unwrap();
    assert_eq!(body.get("ok"), Some(&json::Json::Bool(true)), "{body:?}");
    assert_eq!(body.get_num("iterations"), Some(64.0));
    let metrics = client.metrics_text().unwrap();
    assert!(metrics.contains("pdm_panics_total 0"), "{metrics}");

    flag.set();
    handle.join().unwrap().unwrap();
}

/// An injected single-flight leader panic: concurrent requests for the
/// same shape all come back typed (ok or `planning_failed`) within
/// their deadline — no deadlock — and a retry re-plans successfully
/// with the cache bucket invariant intact.
#[test]
fn leader_panic_over_the_wire_frees_followers_and_allows_retry() {
    let session = Arc::new(
        Session::builder()
            .cache_capacity(4, 16)
            .threads(1)
            .faults(Faults::parse("plan.leader:1:1", 0).unwrap())
            .build(),
    );
    let (addr, flag, handle) = start_server(Arc::clone(&session), 8);

    const CLIENTS: usize = 6;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let outcomes: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let mut client = patient_client(addr);
                    barrier.wait();
                    let t0 = Instant::now();
                    let body = client
                        .call(&format!(
                            r#"{{"op":"plan","source":{},"params":["N"],"deadline_ms":30000}}"#,
                            json::render(&json::Json::Str(SHAPE_SOURCE.into()))
                        ))
                        .expect("a typed in-band answer, not a transport failure");
                    assert!(
                        t0.elapsed() < Duration::from_secs(30),
                        "follower blocked {:?} — flight deadlock",
                        t0.elapsed()
                    );
                    match body.get("ok") {
                        Some(&json::Json::Bool(true)) => "ok".to_string(),
                        _ => body.get_str("kind").unwrap_or("?").to_string(),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every response is typed; at least the panicked leader's client
    // saw the planning failure (unless it raced in after the clear).
    for outcome in &outcomes {
        assert!(
            outcome == "ok" || outcome == "planning_failed",
            "unexpected outcome {outcome:?} in {outcomes:?}"
        );
    }

    // The probe has fired exactly once; retrying re-plans successfully.
    assert_eq!(session.faults().fired(faults::PLAN_LEADER), 1);
    let mut client = patient_client(addr);
    let body = client.call_retrying(&plan_request()).unwrap();
    assert_eq!(body.get("ok"), Some(&json::Json::Bool(true)), "{body:?}");

    // CacheStats bucket invariant survives the torn flight.
    let stats = session.cache_stats();
    assert_eq!(
        stats.hits + stats.planned + stats.waited,
        stats.requests(),
        "{stats:?}"
    );

    flag.set();
    handle.join().unwrap().unwrap();
}

/// The acceptance storm: 100 injected handler panics plus a run of torn
/// response frames under concurrent client load. The server must keep
/// serving fresh connections throughout, and the panic counter must
/// land on the metrics page.
#[test]
fn server_survives_100_handler_panics_and_torn_frames_under_load() {
    let session = Arc::new(
        Session::builder()
            .cache_capacity(4, 16)
            .threads(1)
            // First 100 requests panic their handler; the next 50
            // responses are torn mid-frame. Deterministic, not flaky.
            .faults(Faults::parse("server.handler:1:100,wire.torn:1:50", 0).unwrap())
            .build(),
    );
    let (addr, flag, handle) = start_server(Arc::clone(&session), 6);

    const CLIENTS: usize = 4;
    const SUCCESSES_PER_CLIENT: usize = 50;
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(|| {
                let mut client = patient_client(addr);
                let mut successes = 0;
                let mut attempts = 0;
                while successes < SUCCESSES_PER_CLIENT {
                    attempts += 1;
                    assert!(
                        attempts < 1000,
                        "too many attempts for {successes} successes — server wedged?"
                    );
                    match client.call(&run_request(60_000)) {
                        Ok(body) if body.get("ok") == Some(&json::Json::Bool(true)) => {
                            assert_eq!(body.get_num("iterations"), Some(64.0));
                            successes += 1;
                        }
                        Ok(body) => panic!("unexpected in-band failure: {body:?}"),
                        // Panicked handler or torn frame: the
                        // connection is gone; dial a fresh one.
                        Err(_) => {
                            client = patient_client(addr);
                        }
                    }
                }
            });
        }
    });

    assert_eq!(session.faults().fired(faults::SERVER_HANDLER), 100);
    assert_eq!(session.faults().fired(faults::WIRE_TORN), 50);

    // A fresh connection still serves, and the failures are visible on
    // the metrics page.
    let mut client = patient_client(addr);
    let metrics = client.metrics_text().unwrap();
    assert!(metrics.contains("pdm_panics_total 100"), "{metrics}");
    assert!(metrics.contains("pdm_shed_total"), "{metrics}");
    assert!(metrics.contains("pdm_deadline_exceeded_total"), "{metrics}");

    flag.set();
    handle.join().unwrap().unwrap();
}

/// Read one response frame, tolerating idle polls.
fn read_message(s: &mut TcpStream) -> json::Json {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match wire::read_frame(s).expect("readable response") {
            Frame::Message(text) => return json::parse(&text).expect("response is JSON"),
            Frame::Idle => assert!(Instant::now() < deadline, "no response within 10s"),
            Frame::Eof => panic!("connection closed instead of answering"),
        }
    }
}

/// Expect the server to close the connection (EOF or reset) without
/// sending anything, within a bounded window.
fn expect_clean_close(s: &mut TcpStream) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match wire::read_frame(s) {
            Ok(Frame::Eof) | Err(_) => return,
            Ok(Frame::Idle) => assert!(Instant::now() < deadline, "no close within 10s"),
            Ok(Frame::Message(m)) => panic!("unexpected response {m:?}"),
        }
    }
}
