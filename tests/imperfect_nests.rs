//! Differential tests for imperfect-nest normalization.
//!
//! For > 100 random **imperfect** nests from the extended generator, the
//! normalized execution paths
//!
//! ```text
//! to_perfect_kernels → plan_program → { kernels-in-order sequential,
//!                                       staged interpreted-parallel,
//!                                       staged compiled-parallel }
//! ```
//!
//! must all be **memory-identical** to the imperfect reference
//! interpreter (which walks the original nest in exact source order),
//! and the `sink → unsink` pair must round-trip both structurally and
//! through the pretty-printer/parser.
//!
//! A separate oracle test pins the normalizer's *outputs*: every emitted
//! kernel re-parses as a concrete perfect nest, the kernel DAG is
//! acyclic and stage-consistent, and — on small sizes — a brute-force
//! statement-level dependence check confirms every real inter-kernel
//! conflict is covered by a DAG edge.
//!
//! # Reproducibility
//!
//! The vendored `proptest` stand-in derives each test's RNG stream from
//! the test name, optionally mixed with the **`PDM_PROPTEST_SEED`**
//! environment variable. CI pins `PDM_PROPTEST_SEED=1` (see
//! `.github/workflows/ci.yml`), so a red CI run names a case that any
//! machine reproduces with the same variable; set a different value
//! locally to explore other sequences.

use proptest::prelude::*;
use std::collections::HashSet;
use vardep_loops::core::parallelize_program;
use vardep_loops::loopir::generator::{random_imperfect_nest, GenConfig};
use vardep_loops::loopir::parse::{parse_imperfect, parse_loop};
use vardep_loops::loopir::pretty::{render, render_imperfect};
use vardep_loops::prelude::*;
use vardep_loops::runtime::equivalence::assert_program_equivalent;

fn imperfect_for_seed(seed: u64) -> ImperfectNest {
    let cfg = GenConfig {
        depth: 2 + (seed as usize % 2),
        extent: 3 + (seed as i64 % 3),
        coeff: 2,
        offset: 3,
        stmts: 1 + (seed as usize % 2),
        arrays: 1 + (seed as usize % 2),
    };
    random_imperfect_nest(seed, &cfg, 1 + (seed as usize % 3)).expect("generator")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(110))]

    /// The headline differential: one random imperfect nest per case,
    /// every normalized executor pinned to the imperfect reference.
    #[test]
    fn normalized_executors_match_imperfect_reference(seed in 0u64..1_000_000) {
        let imp = imperfect_for_seed(seed);
        assert_program_equivalent(&imp, seed);
    }

    /// Sinking is exactly invertible, and the pretty-printed forms
    /// round-trip through the parser.
    #[test]
    fn sink_then_unsink_roundtrips_source(seed in 0u64..1_000_000) {
        let imp = imperfect_for_seed(seed);
        // The generator guarantees non-empty inner loops, so full
        // sinking is always legal.
        let sunk = sink_fully(&imp).expect("sink");
        let back = unsink(&sunk).expect("unsink");
        prop_assert_eq!(&back, &imp, "unsink(sink(imp)) != imp (seed {})", seed);
        prop_assert_eq!(
            render_imperfect(&back),
            render_imperfect(&imp),
            "pretty-printed round trip diverged (seed {})", seed
        );
        // The sunk (guarded) perfect nest itself survives text:
        // render → parse → render is a fixpoint.
        let text = render(&sunk);
        let reparsed = parse_loop(&text).expect("sunk nest re-parses");
        prop_assert_eq!(render(&reparsed), text, "seed {}", seed);
        // And the imperfect source survives text the same way (array
        // ids may renumber to first-use order, so compare canonically).
        let itext = render_imperfect(&imp);
        let ireparsed = parse_imperfect(&itext).expect("imperfect re-parses");
        prop_assert_eq!(render_imperfect(&ireparsed), itext, "seed {}", seed);
    }
}

/// All cells a kernel touches, guard-aware: `(array, flat cell, wrote)`.
fn kernel_footprint(
    nest: &LoopNest,
    mem: &Memory,
) -> (HashSet<(usize, usize)>, HashSet<(usize, usize)>) {
    let mut reads = HashSet::new();
    let mut writes = HashSet::new();
    for it in nest.iterations().expect("iterations") {
        for stmt in nest.body() {
            if !stmt.guards_hold(it.as_slice()) {
                continue;
            }
            for (kind, r) in stmt.accesses() {
                let sub = r.access.eval(&it).expect("subscript");
                let cell = mem.flat(r.array, &sub).expect("in bounds");
                if kind == vardep_loops::loopir::AccessKind::Write {
                    writes.insert((r.array.0, cell));
                } else {
                    reads.insert((r.array.0, cell));
                }
            }
        }
    }
    (reads, writes)
}

/// Oracle: kernels re-parse as concrete perfect nests; the DAG is
/// acyclic and stage-consistent; and on small sizes every *actual*
/// statement-level conflict between two kernels is covered by an edge
/// (edges are a conservative superset — the unsafe direction would be a
/// missing edge).
#[test]
fn kernel_and_dag_oracle() {
    for seed in 0..40u64 {
        let imp = imperfect_for_seed(seed);
        let normalized = to_perfect_kernels(&imp).expect("normalize");
        let pp = parallelize_program(&imp).expect("plan");
        assert_eq!(pp.kernel_count(), normalized.kernels.len());
        assert!(pp.validate_dag(), "seed {seed}: DAG/stage inconsistency");
        for &(f, t) in pp.edges() {
            assert!(f < t, "seed {seed}: backward edge ({f}, {t})");
        }

        // Every kernel is a concrete perfect nest that survives text.
        for (i, k) in normalized.kernels.iter().enumerate() {
            assert!(!k.nest.is_symbolic());
            let text = render(&k.nest);
            let reparsed =
                parse_loop(&text).unwrap_or_else(|e| panic!("seed {seed} kernel {i}: {e}"));
            assert_eq!(
                render(&reparsed),
                text,
                "seed {seed} kernel {i}: canonical render not a fixpoint"
            );
            reparsed.iterations().expect("concrete iteration space");
        }

        // Brute-force dependence check: real conflicts need edges.
        let mem = Memory::for_imperfect(&imp).expect("memory");
        let foots: Vec<_> = normalized
            .kernels
            .iter()
            .map(|k| kernel_footprint(&k.nest, &mem))
            .collect();
        let edge_set: HashSet<(usize, usize)> = pp.edges().iter().copied().collect();
        for i in 0..foots.len() {
            for j in i + 1..foots.len() {
                let (ri, wi) = &foots[i];
                let (rj, wj) = &foots[j];
                let conflict = wi.intersection(wj).next().is_some()
                    || wi.intersection(rj).next().is_some()
                    || ri.intersection(wj).next().is_some();
                if conflict {
                    assert!(
                        edge_set.contains(&(i, j)),
                        "seed {seed}: kernels {i} and {j} really conflict but the DAG \
                         has no edge — the conservative edge set missed a dependence"
                    );
                }
            }
        }
    }
}

/// The stage schedule puts dependent kernels in strictly increasing
/// stages and never groups conflicting kernels together.
#[test]
fn stages_respect_real_conflicts() {
    for seed in 0..40u64 {
        let imp = imperfect_for_seed(seed);
        let pp = parallelize_program(&imp).expect("plan");
        let mut stage_of = vec![0usize; pp.kernel_count()];
        for (s, ks) in pp.stages().iter().enumerate() {
            for &k in ks {
                stage_of[k] = s;
            }
        }
        for &(f, t) in pp.edges() {
            assert!(
                stage_of[f] < stage_of[t],
                "seed {seed}: edge ({f}, {t}) not separated by a barrier"
            );
        }
    }
}
