//! Property-based integration tests: randomly generated affine loop nests
//! must always yield sound, executable plans.
//!
//! For every generated nest the full chain is validated:
//! 1. the PDM lattice covers every ground-truth distance (ISDG),
//! 2. the plan keeps every dependent pair in one group, in order,
//! 3. parallel execution is bit-identical to sequential.

use proptest::prelude::*;
use vardep_loops::core::{analyze, parallelize};
use vardep_loops::loopir::parse::parse_loop;
use vardep_loops::prelude::*;

/// A random affine 2-D loop nest with one write and one read of a shared
/// array (coefficients small enough to keep the footprint sane).
fn random_nest() -> impl Strategy<Value = LoopNest> {
    // (write coeffs+offsets, read coeffs+offsets), each subscript affine
    // in (i1, i2).
    let coef = -3i64..=3;
    let off = -4i64..=4;
    (
        proptest::collection::vec(coef.clone(), 4),
        proptest::collection::vec(off.clone(), 2),
        proptest::collection::vec(coef, 4),
        proptest::collection::vec(off, 2),
        3i64..=7, // N
    )
        .prop_map(|(wc, wo, rc, ro, n)| {
            let src = format!(
                "for i1 = 0..={n} {{ for i2 = 0..={n} {{
                   A[{}*i1 + {}*i2 + {}, {}*i1 + {}*i2 + {}] = A[{}*i1 + {}*i2 + {}, {}*i1 + {}*i2 + {}] + 1;
                 }} }}",
                wc[0], wc[1], wo[0], wc[2], wc[3], wo[1],
                rc[0], rc[1], ro[0], rc[2], rc[3], ro[1],
            );
            parse_loop(&src).expect("generated source parses")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pdm_covers_ground_truth_distances(nest in random_nest()) {
        let analysis = analyze(&nest).unwrap();
        let lat = analysis.lattice().unwrap();
        let g = vardep_loops::isdg::graph::build_all_pairs(&nest, 200_000).unwrap();
        for d in g.distances() {
            prop_assert!(lat.contains(&d).unwrap(), "distance {} escapes the PDM", d);
        }
    }

    #[test]
    fn plans_are_sound_against_isdg(nest in random_nest()) {
        let plan = parallelize(&nest).unwrap();
        let g = vardep_loops::isdg::graph::build_all_pairs(&nest, 200_000).unwrap();
        let report = vardep_loops::isdg::validate::validate_plan(&g, &plan).unwrap();
        prop_assert!(report.is_sound(), "violations: {:?}", report.violations);
    }

    #[test]
    fn parallel_execution_matches_sequential(nest in random_nest()) {
        let plan = parallelize(&nest).unwrap();
        let rep = vardep_loops::runtime::equivalence::compare(&nest, &plan, 99).unwrap();
        prop_assert!(rep.equal);
    }

    #[test]
    fn race_checker_accepts_generated_plans(nest in random_nest()) {
        let plan = parallelize(&nest).unwrap();
        let mem = Memory::for_nest(&nest).unwrap();
        let r = vardep_loops::runtime::checked::run_parallel_checked(&nest, &plan, &mem);
        prop_assert!(r.is_ok(), "race checker rejected a proven plan: {:?}", r.err());
    }

    #[test]
    fn transformed_space_bijection(nest in random_nest()) {
        let plan = parallelize(&nest).unwrap();
        let its = nest.iterations().unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in &its {
            let y = plan.transformed_index(i).unwrap();
            prop_assert_eq!(plan.original_index(&y).unwrap(), i.clone());
            prop_assert!(seen.insert(y.0.clone()), "transform not injective");
        }
        prop_assert_eq!(
            plan.bounds().count_points().unwrap() as usize,
            its.len()
        );
    }
}
