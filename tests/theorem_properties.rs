//! Property tests for the paper's theorems on randomized inputs.
//!
//! * **Theorem 1** (legality): whenever `H·T` is lex-positive echelon,
//!   every lex-positive lattice member stays lex-positive under `T`.
//! * **Lemma 1** (zero columns): distances have zero component along any
//!   zero column of the PDM.
//! * **Algorithm 1**: always returns a legal `T` with exactly `n − rank`
//!   leading zero columns.
//! * **Theorem 2** (partitioning): lattice translates never change
//!   partition; distinct cosets never share one.

use proptest::prelude::*;
use vardep_loops::matrix::hnf::hermite_normal_form;
use vardep_loops::matrix::lex::{is_lex_positive, small_vectors};
use vardep_loops::prelude::*;

fn small_hnf(n: usize) -> impl Strategy<Value = IMat> {
    (1..=n)
        .prop_flat_map(move |rows| proptest::collection::vec(-5i64..=5, rows * n))
        .prop_filter_map("nonzero HNF", move |data| {
            let rows = data.len() / n;
            let m = IMat::from_flat(rows, n, &data).ok()?;
            let h = hermite_normal_form(&m).ok()?.hnf;
            (h.rows() > 0).then_some(h)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn theorem1_certified_transforms_preserve_lattice_order(h in small_hnf(3)) {
        let z = vardep_loops::core::algorithm1::algorithm1(&h).unwrap();
        // Check the *definition* of legality over a ball of lattice
        // members: every lex-positive d = x·H maps to lex-positive d·T.
        for x in small_vectors(h.rows(), 3) {
            let d = h.vec_mul(&IVec(x)).unwrap();
            if is_lex_positive(&d) {
                let td = z.t.apply(&d).unwrap();
                prop_assert!(
                    is_lex_positive(&td),
                    "legal T reversed distance {} -> {}", d, td
                );
            }
        }
    }

    #[test]
    fn algorithm1_zero_column_count(h in small_hnf(4)) {
        let z = vardep_loops::core::algorithm1::algorithm1(&h).unwrap();
        prop_assert_eq!(z.zero_cols, 4 - h.rows());
        // Lemma 1 on the transformed lattice: members have zero components
        // in the leading columns.
        for x in small_vectors(h.rows(), 2) {
            let d = z.transformed.vec_mul(&IVec(x)).unwrap();
            for c in 0..z.zero_cols {
                prop_assert_eq!(d[c], 0);
            }
        }
    }

    #[test]
    fn theorem2_cosets_partition_the_space(h in small_hnf(2)) {
        prop_assume!(h.rows() == 2); // full rank in Z^2
        let p = vardep_loops::core::partition::Partitioning::new(h.clone());
        let Ok(p) = p else { return Ok(()); }; // e.g. non-triangular HNF can't occur, but guard
        let lat = Lattice::from_generators(&h).unwrap();
        for x in small_vectors(2, 4) {
            let xo = p.offset_of(&IVec::from_slice(&x)).unwrap();
            for gvec in small_vectors(2, 2) {
                let shift = lat.basis().vec_mul(&IVec(gvec)).unwrap();
                let y = IVec::from_slice(&x).add(&shift).unwrap();
                prop_assert_eq!(p.offset_of(&y).unwrap(), xo.clone());
            }
        }
        // Offset count over a box equals det(H).
        let mut offsets = std::collections::HashSet::new();
        for x in small_vectors(2, 5) {
            offsets.insert(p.offset_of(&IVec::from_slice(&x)).unwrap());
        }
        prop_assert_eq!(offsets.len() as i64, p.count());
    }

    #[test]
    fn unimodular_transform_is_bijection_on_box(h in small_hnf(3)) {
        let z = vardep_loops::core::algorithm1::algorithm1(&h).unwrap();
        let inv = z.t.inverse().unwrap();
        for x in small_vectors(3, 2) {
            let v = IVec(x);
            let y = z.t.apply(&v).unwrap();
            prop_assert_eq!(inv.apply(&y).unwrap(), v);
        }
    }
}
