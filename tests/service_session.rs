//! Facade-level integration tests for the plan-serving layer: a real
//! [`PlanServer`] on a real TCP socket, driven entirely through the
//! `vardep_loops` re-exports — the same surface a downstream user sees.

use std::sync::{Arc, Barrier};
use vardep_loops::service::json;
use vardep_loops::{PlanServer, ServiceClient, Session};

/// The §4.1-style symbolic shape used throughout: one parameter N.
const SHAPE_SOURCE: &str = "for i1 = 0..N { for i2 = 0..N {
   A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
 } }";

fn start_server(
    session: Arc<Session>,
    workers: usize,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = PlanServer::bind("127.0.0.1:0", session, workers).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

#[test]
fn round_trip_plan_run_instantiate_through_facade() {
    let session = Arc::new(Session::builder().cache_capacity(2, 8).threads(1).build());
    let (addr, handle) = start_server(session, 2);
    let mut client = ServiceClient::connect(addr).expect("connect");

    // Plan by source; the response carries the shape hash for replays.
    let req = format!(
        r#"{{"op":"plan","source":{},"params":["N"]}}"#,
        json::render(&json::Json::Str(SHAPE_SOURCE.into()))
    );
    let body = client.call(&req).expect("plan");
    assert_eq!(body.get("ok"), Some(&json::Json::Bool(true)), "{body:?}");
    assert_eq!(body.get_num("doall"), Some(1.0));
    assert_eq!(body.get_num("partitions"), Some(2.0));
    let hash = body.get_str("shape_hash").expect("shape_hash").to_string();

    // Instantiate by hash only — no source resent.
    let body = client
        .call(&format!(
            r#"{{"op":"instantiate","shape_hash":"{hash}","values":{{"N":32}}}}"#
        ))
        .expect("instantiate");
    assert_eq!(body.get("ok"), Some(&json::Json::Bool(true)), "{body:?}");
    assert!(body.get_num("groups").unwrap() >= 1.0);

    // Equal run requests produce equal checksums (deterministic seed).
    let run = |client: &mut ServiceClient| {
        let body = client
            .call(&format!(
                r#"{{"op":"run","shape_hash":"{hash}","values":{{"N":16}},"seed":7}}"#
            ))
            .expect("run");
        assert_eq!(body.get("ok"), Some(&json::Json::Bool(true)), "{body:?}");
        (
            body.get_num("iterations").unwrap(),
            body.get_num("checksum").unwrap(),
        )
    };
    let (iters_a, sum_a) = run(&mut client);
    let (iters_b, sum_b) = run(&mut client);
    assert_eq!(iters_a, 256.0);
    assert_eq!((iters_a, sum_a), (iters_b, sum_b));

    // The whole exchange planned the shape exactly once.
    let stats = client.call(r#"{"op":"stats"}"#).expect("stats");
    let cache = stats.get("cache").expect("cache object");
    assert_eq!(cache.get_num("planned"), Some(1.0));

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("serve");
}

#[test]
fn concurrent_clients_single_flight_over_the_wire() {
    const CLIENTS: usize = 3;
    let session = Arc::new(Session::builder().cache_capacity(2, 8).threads(1).build());
    // One worker accepts; each client connection occupies another.
    let (addr, handle) = start_server(Arc::clone(&session), CLIENTS + 2);

    // All clients connect first, then fire the same plan request at
    // once — the sharded cache's single-flight must plan once and give
    // the other requests the cached/waited-on template.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                let req = format!(
                    r#"{{"op":"plan","source":{},"params":["N"]}}"#,
                    json::render(&json::Json::Str(SHAPE_SOURCE.into()))
                );
                barrier.wait();
                let body = client.call(&req).expect("plan");
                assert_eq!(body.get("ok"), Some(&json::Json::Bool(true)), "{body:?}");
                body.get_str("shape_hash").expect("shape_hash").to_string()
            })
        })
        .collect();
    let hashes: Vec<String> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(hashes.windows(2).all(|w| w[0] == w[1]));

    let stats = session.cache_stats();
    assert_eq!(stats.planned, 1, "single-flight must plan exactly once");
    assert_eq!(stats.hits + stats.waited, (CLIENTS - 1) as u64);
    assert_eq!(stats.requests(), CLIENTS as u64);

    let mut client = ServiceClient::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("serve");
}

#[test]
fn metrics_endpoint_is_consistent_with_traffic() {
    let session = Arc::new(Session::builder().cache_capacity(2, 8).threads(1).build());
    let (addr, handle) = start_server(Arc::clone(&session), 2);
    let mut client = ServiceClient::connect(addr).expect("connect");

    let plan_req = format!(
        r#"{{"op":"plan","source":{},"params":["N"]}}"#,
        json::render(&json::Json::Str(SHAPE_SOURCE.into()))
    );
    let hash = client
        .call(&plan_req)
        .expect("plan")
        .get_str("shape_hash")
        .expect("shape_hash")
        .to_string();
    for n in [8i64, 12, 16] {
        let body = client
            .call(&format!(
                r#"{{"op":"run","shape_hash":"{hash}","values":{{"N":{n}}}}}"#
            ))
            .expect("run");
        assert_eq!(body.get("ok"), Some(&json::Json::Bool(true)), "{body:?}");
    }
    // One in-band error: unknown hash. Errors still count as requests.
    let body = client
        .call(r#"{"op":"run","shape_hash":"0x0000000000000001","values":{"N":8}}"#)
        .expect("transport ok");
    assert_eq!(body.get("ok"), Some(&json::Json::Bool(false)));
    assert_eq!(body.get_str("kind"), Some("unknown_shape"));

    let text = client.metrics_text().expect("metrics");
    let count = |needle: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(needle))
            .unwrap_or_else(|| panic!("metric {needle} missing from:\n{text}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert_eq!(count("pdm_connections_total"), 1.0);
    assert_eq!(count(r#"pdm_requests_total{op="plan"}"#), 1.0);
    assert_eq!(count(r#"pdm_requests_total{op="run"}"#), 4.0);
    assert_eq!(count(r#"pdm_request_errors_total{op="run"}"#), 1.0);

    // The stats op agrees with the session's own view, and the cache
    // invariant holds: every request is a hit, a planning run, or a
    // wait on another request's flight.
    let stats = client.call(r#"{"op":"stats"}"#).expect("stats");
    let cache = stats.get("cache").expect("cache object");
    let s = session.cache_stats();
    assert_eq!(cache.get_num("hits"), Some(s.hits as f64));
    assert_eq!(cache.get_num("planned"), Some(s.planned as f64));
    assert_eq!(s.hits + s.planned + s.waited, s.requests());

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("serve");
}
