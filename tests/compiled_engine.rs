//! Differential tests: interpreter vs. compiled engine.
//!
//! Every nest is executed four ways — sequential interpreter (reference),
//! interpreted-parallel, compiled-sequential, compiled-parallel — and all
//! must produce identical `Memory` contents and iteration counts. Inputs
//! are the paper's examples plus > 100 generator-produced random nests
//! spanning depths 1–3, multi-statement bodies, and plans with and
//! without doall prefixes and Theorem-2 partitions. A thread-matrix leg
//! repeats the comparison on dedicated work-stealing pools of 1, 2, and
//! `max(4, machine)` workers, so scheduler changes cannot hide behind
//! the default pool width.

use proptest::prelude::*;
use vardep_loops::core::parallelize;
use vardep_loops::loopir::generator::{random_nest, GenConfig};
use vardep_loops::loopir::parse::parse_loop;
use vardep_loops::prelude::*;
use vardep_loops::runtime::equivalence::{assert_three_way_equivalent, compare_three_way};
use vardep_loops::runtime::{CompiledNest, Memory};

/// Reference count + compiled-sequential differential for one nest.
fn check_compiled_sequential(nest: &LoopNest, seed: u64) {
    let mut m_ref = Memory::for_nest(nest).expect("alloc");
    let mut m_cmp = Memory::for_nest(nest).expect("alloc");
    m_ref.init_deterministic(seed);
    m_cmp.init_deterministic(seed);
    let c_ref = run_sequential(nest, &m_ref).expect("interpret");
    let compiled = CompiledNest::compile(nest, &m_cmp).expect("compile");
    let c_cmp = compiled.run(&m_cmp).expect("execute");
    assert_eq!(c_ref, c_cmp, "iteration counts diverged");
    assert_eq!(
        m_ref.snapshot(),
        m_cmp.snapshot(),
        "compiled sequential memory diverged"
    );
}

#[test]
fn paper_examples_three_way() {
    for src in [
        "for i1 = 0..=9 { for i2 = 0..=9 {
           A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
         } }",
        "for i1 = 0..=9 { for i2 = 0..=9 {
           A[i1, 3*i2 + 2] = B[i1, i2] + 1;
           B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
         } }",
    ] {
        let nest = parse_loop(src).unwrap();
        assert_three_way_equivalent(&nest, 1);
        assert_three_way_equivalent(&nest, 99);
        check_compiled_sequential(&nest, 7);
    }
}

#[test]
fn stencil_and_workloads_three_way() {
    for src in [
        "for i = 1..=40 { A[i] = A[i - 1] + 1; }",
        "for i = 0..=40 { A[i] = i * 3; }",
        "for i = 0..=40 { A[2*i] = A[i] + 1; }",
        "for i = 1..=16 { for j = 1..=16 { A[i, j] = A[i - 1, j] + A[i, j - 1]; } }",
        "for i = 1..=12 { for j = 0..=12 { A[i, j] = A[i - 1, j] + 1; } }",
        "for i = 0..=12 { for j = 0..=i { A[i, j] = A[i, j] + j; } }",
        "for i = 1..=5 { for j = 0..=5 { for k = 0..=5 {
           A[i, j, k] = A[i - 1, j, k] + 1;
         } } }",
    ] {
        let nest = parse_loop(src).unwrap();
        assert_three_way_equivalent(&nest, 13);
        check_compiled_sequential(&nest, 13);
    }
}

#[test]
fn random_nests_three_way_over_100_cases() {
    let mut partitioned = 0usize;
    let mut with_doall = 0usize;
    let mut cases = 0usize;
    for seed in 0..120u64 {
        let cfg = GenConfig {
            depth: 1 + (seed as usize % 3),
            extent: 5 + (seed as i64 % 4),
            stmts: 1 + (seed as usize % 2),
            arrays: 1 + (seed as usize % 2),
            ..GenConfig::default()
        };
        let nest = random_nest(seed, &cfg).expect("generator");
        let plan = parallelize(&nest).unwrap_or_else(|e| panic!("seed {seed}: plan: {e}"));
        if plan.partition().is_some() {
            partitioned += 1;
        }
        if plan.doall_count() > 0 {
            with_doall += 1;
        }
        let rep = compare_three_way(&nest, &plan, seed ^ 0xA5)
            .unwrap_or_else(|e| panic!("seed {seed}: execute: {e}"));
        assert!(
            rep.all_equal(),
            "seed {seed}: divergence (interp {}, compiled {})",
            rep.interp_equal,
            rep.compiled_equal
        );
        check_compiled_sequential(&nest, seed ^ 0x5A);
        cases += 1;
    }
    assert!(cases >= 100, "need >= 100 random cases, got {cases}");
    // The sweep must actually exercise both plan shapes.
    assert!(partitioned > 0, "no partitioned plan in the sweep");
    assert!(with_doall > 0, "no doall-prefix plan in the sweep");
}

/// The pool widths of the thread matrix: serial, minimal parallelism,
/// and wider than most CI machines so stealing actually happens.
fn thread_matrix() -> [usize; 3] {
    let machine = std::thread::available_parallelism().map_or(4, |n| n.get());
    [1, 2, machine.max(4)]
}

/// Thread-matrix leg on hand-picked shapes: the paper's running
/// example, a cost-skewed triangle, and a skewed row recurrence — each
/// executed on every pool width of the matrix.
#[test]
fn thread_matrix_on_paper_and_skewed_nests() {
    for src in [
        "for i1 = 0..=9 { for i2 = 0..=9 {
           A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
         } }",
        "for i = 0..=12 { for j = 0..=i { A[i, j] = A[i, j] + j; } }",
        "for i = 0..=16 { for j = 1..=16 { A[i, j] = A[i, j - 1] + 1; } }",
    ] {
        let nest = parse_loop(src).unwrap();
        for threads in thread_matrix() {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| assert_three_way_equivalent(&nest, 21));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Thread-matrix leg on random nests (seeds are name-derived;
    /// `PDM_PROPTEST_SEED` pins the whole matrix): every pool width
    /// must agree with the sequential reference bit for bit.
    #[test]
    fn thread_matrix_three_way_random(seed in 0u64..1_000_000) {
        let cfg = GenConfig {
            depth: 1 + (seed as usize % 3),
            extent: 5 + (seed as i64 % 4),
            stmts: 1 + (seed as usize % 2),
            arrays: 1 + (seed as usize % 2),
            ..GenConfig::default()
        };
        let nest = random_nest(seed, &cfg).expect("generator");
        let plan = parallelize(&nest).expect("plan");
        for threads in thread_matrix() {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let rep = pool
                .install(|| compare_three_way(&nest, &plan, seed ^ 0xC3))
                .unwrap();
            prop_assert!(
                rep.all_equal(),
                "threads={} divergence (interp {}, compiled {})",
                threads, rep.interp_equal, rep.compiled_equal
            );
        }
    }
}
