//! Differential tests: parametric plan templates vs. concrete replanning.
//!
//! For >100 random **parametric** nests and random parameter valuations,
//! the template path
//!
//! ```text
//! plan_template(shape) → instantiate(params)            (no FM, no analysis)
//! ```
//!
//! must be indistinguishable from the existing concrete path
//!
//! ```text
//! parse_loop_with(render(shape), params) → parallelize  (fresh plan)
//! ```
//!
//! on everything observable: the lowered nest, the plan structure
//! (transform, doall prefix, partition offsets), the **group sequence**
//! (the materializing shim, order included), the **bound rows** as
//! evaluated — `(lo, hi)` at every level for every feasible prefix,
//! which is the full runtime-observable content of the rows — and the
//! **execution results**, pinned through the three-way equivalence
//! harness (sequential interpreter vs. interpreted-parallel vs.
//! compiled-parallel, bit-identical memory).
//!
//! Valuations deliberately include sizes that empty the iteration space
//! (and, with two parameters, spaces emptied at inner levels only), so
//! the degenerate paths are differential-tested too.
//!
//! Reproducibility: the proptest RNG stream is derived from the test
//! name mixed with the env-pinned `PDM_PROPTEST_SEED` (CI sets it to
//! `1`; see the vendored `proptest` crate docs), so a failing case
//! replays identically on any machine with the same variable set.

use proptest::prelude::*;
use vardep_loops::core::parallelize;
use vardep_loops::core::template::plan_template;
use vardep_loops::loopir::generator::{random_symbolic_nest, GenConfig};
use vardep_loops::loopir::parse::parse_loop_with;
use vardep_loops::loopir::pretty;
use vardep_loops::poly::bounds::LoopBounds;
use vardep_loops::prelude::*;
use vardep_loops::runtime::equivalence::compare_three_way;
use vardep_loops::runtime::exec;

fn shape_for_seed(seed: u64) -> (LoopNest, Vec<&'static str>) {
    let params: Vec<&'static str> = if seed.is_multiple_of(3) {
        vec!["N", "M"]
    } else {
        vec!["N"]
    };
    let cfg = GenConfig {
        depth: 1 + (seed as usize % 3),
        extent: 3 + (seed as i64 % 4),
        stmts: 1 + (seed as usize % 2),
        arrays: 1 + (seed as usize % 2),
        ..GenConfig::default()
    };
    let shape = random_symbolic_nest(seed, &cfg, &params).expect("generator");
    (shape, params)
}

/// A deterministic pseudo-random valuation in `-1..=7` per parameter —
/// small enough to execute, negative often enough to hit empty spaces.
fn valuation(seed: u64, round: u64, params: &[&'static str]) -> Vec<(&'static str, i64)> {
    params
        .iter()
        .enumerate()
        .map(|(j, p)| {
            let r = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(round.wrapping_mul(97))
                .wrapping_add(j as u64 * 31);
            let r = r ^ (r >> 29);
            (*p, (r % 9) as i64 - 1)
        })
        .collect()
}

/// Integer points completing `prefix` (length `k`) under `b`.
fn subtree_points(b: &LoopBounds, k: usize, prefix: &mut Vec<i64>) -> u64 {
    if k == b.dim() {
        return 1;
    }
    let (lo, hi) = b.range(k, prefix).expect("range");
    let mut total = 0u64;
    for v in lo..=hi {
        prefix.push(v);
        total += subtree_points(b, k + 1, prefix);
        prefix.pop();
    }
    total
}

/// Evaluated bound-row equivalence: `(lo, hi)` must agree at every level
/// for every feasible prefix of the iteration walk — the complete
/// observable content of the per-level `max`/`min` candidate rows — with
/// two principled tolerances (see `pdm_poly::bounds`' exactness
/// contract):
///
/// * empty ranges compare by emptiness alone: on an infeasible space the
///   concrete path injects its constant `(1, 0)` encoding while the
///   parametric path goes empty through the substituted rows themselves
///   (e.g. `(0, N+1)` at `N = -3`);
/// * a position present on one side only must be **dark shadow** — its
///   subtree contains no integer point (concrete FM integer-tightens
///   intermediate rows the parametric run sometimes cannot, which can
///   leave rationally wider ranges whose extra positions are provably
///   empty). No generated seed currently exercises this branch; it
///   exists so a future generator extension degrades into a *checked*
///   tolerance instead of a spurious failure.
fn assert_ranges_equivalent(a: &LoopBounds, b: &LoopBounds, k: usize, prefix: &mut Vec<i64>) {
    let ra = a.range(k, prefix).expect("template range");
    let rb = b.range(k, prefix).expect("concrete range");
    let (empty_a, empty_b) = (ra.0 > ra.1, rb.0 > rb.1);
    if empty_a && empty_b {
        return;
    }
    let span_lo = if empty_a {
        rb.0
    } else if empty_b {
        ra.0
    } else {
        ra.0.min(rb.0)
    };
    let span_hi = if empty_a {
        rb.1
    } else if empty_b {
        ra.1
    } else {
        ra.1.max(rb.1)
    };
    for v in span_lo..=span_hi {
        let in_a = !empty_a && (ra.0..=ra.1).contains(&v);
        let in_b = !empty_b && (rb.0..=rb.1).contains(&v);
        prefix.push(v);
        match (in_a, in_b) {
            (true, true) => {
                if k + 1 < a.dim() {
                    assert_ranges_equivalent(a, b, k + 1, prefix);
                }
            }
            (true, false) => assert_eq!(
                subtree_points(a, k + 1, prefix),
                0,
                "level {k} position {prefix:?} is template-only but not dark shadow \
                 (template {ra:?} vs concrete {rb:?})"
            ),
            (false, true) => assert_eq!(
                subtree_points(b, k + 1, prefix),
                0,
                "level {k} position {prefix:?} is concrete-only but not dark shadow \
                 (template {ra:?} vs concrete {rb:?})"
            ),
            (false, false) => {}
        }
        prefix.pop();
    }
}

fn check_one(seed: u64, round: u64) {
    let (shape, params) = shape_for_seed(seed);
    let vals = valuation(seed, round, &params);

    // Template path: plan the shape once, instantiate at the valuation.
    let template = plan_template(&shape).expect("template");
    let inst_nest = template.instantiate_nest(&vals).expect("instantiate nest");
    let inst_plan = template.instantiate(&vals).expect("instantiate plan");

    // Concrete path: render → parse_loop_with → fresh plan, exactly the
    // pre-template flow (also differential-testing the pretty-printer).
    let text = pretty::render(&shape);
    let conc_nest = parse_loop_with(&text, &vals).expect("concrete parse");
    let conc_plan = parallelize(&conc_nest).expect("concrete plan");

    // The lowered nest is the parsed nest. (Array *ids* may be numbered
    // differently — the generator declares arrays up front, the parser
    // in first-use order — so compare the canonical rendering, which is
    // name-based and id-free.)
    assert_eq!(
        pretty::render(&inst_nest),
        pretty::render(&conc_nest),
        "substituted nest != reparsed nest"
    );

    // Plan structure is bit-identical.
    assert_eq!(inst_plan.transform(), conc_plan.transform(), "transform");
    assert_eq!(inst_plan.inverse(), conc_plan.inverse(), "inverse");
    assert_eq!(
        inst_plan.transformed_pdm(),
        conc_plan.transformed_pdm(),
        "transformed PDM"
    );
    assert_eq!(inst_plan.doall_count(), conc_plan.doall_count(), "doall");
    assert_eq!(
        inst_plan.partition_count(),
        conc_plan.partition_count(),
        "partition count"
    );

    // Bound rows: equivalent evaluated ranges everywhere (identical in
    // practice; dark-shadow-only divergence is verified, not assumed).
    assert_ranges_equivalent(inst_plan.bounds(), conc_plan.bounds(), 0, &mut Vec::new());

    // Group sequence: same groups, same order, same offsets. If the
    // sequences diverge (possible only through the dark-shadow tolerance
    // above), every unmatched group must carry zero iterations — the
    // non-empty work schedule is always identical.
    let gi = exec::groups(&inst_plan).expect("template groups");
    let gc = exec::groups(&conc_plan).expect("concrete groups");
    let key = |g: &exec::GroupSpec| (g.prefix.clone(), g.offset.clone());
    if gi.len() != gc.len() || gi.iter().zip(&gc).any(|(a, b)| key(a) != key(b)) {
        let nonempty = |nest: &LoopNest, plan: &ParallelPlan, gs: &[exec::GroupSpec]| {
            gs.iter()
                .filter(|g| {
                    let mut c = 0u64;
                    exec::walk_group(nest, plan, g, |_| {
                        c += 1;
                        Ok(())
                    })
                    .expect("walk");
                    c > 0
                })
                .map(key)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            nonempty(&inst_nest, &inst_plan, &gi),
            nonempty(&conc_nest, &conc_plan, &gc),
            "non-empty group schedules diverged"
        );
    } else {
        assert_eq!(
            exec::group_count(&inst_plan).unwrap(),
            exec::group_count(&conc_plan).unwrap(),
            "arithmetic group count"
        );
    }

    // Execution results: all three executors agree on the instantiated
    // plan, and the concrete plan reaches the same sequential reference
    // on the identical nest/seed — so the two paths' memories are
    // bit-identical transitively.
    let rep = compare_three_way(&inst_nest, &inst_plan, seed ^ round).expect("template exec");
    assert!(rep.all_equal(), "template executors diverged: {rep:?}");
    let rep = compare_three_way(&conc_nest, &conc_plan, seed ^ round).expect("concrete exec");
    assert!(rep.all_equal(), "concrete executors diverged: {rep:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(110))]

    /// The headline differential: one random parametric nest, two random
    /// valuations, every observable pinned.
    #[test]
    fn template_instantiation_matches_concrete_replanning(seed in 0u64..1_000_000) {
        check_one(seed, 0);
        check_one(seed, 1);
    }
}

/// One template must serve *many* sizes of one shape — the serving
/// pattern the cache is built for — including the empty one.
#[test]
fn one_template_many_sizes() {
    let (shape, params) = shape_for_seed(41);
    let template = plan_template(&shape).unwrap();
    for n in [-1i64, 0, 1, 2, 5, 9, 13] {
        let vals: Vec<(&str, i64)> = params.iter().map(|p| (*p, n)).collect();
        let inst_nest = template.instantiate_nest(&vals).unwrap();
        let inst_plan = template.instantiate(&vals).unwrap();
        let conc_plan = parallelize(&inst_nest).unwrap();
        assert_eq!(
            inst_plan.bounds().enumerate().unwrap(),
            conc_plan.bounds().enumerate().unwrap(),
            "N={n}"
        );
        let rep = compare_three_way(&inst_nest, &inst_plan, 7).unwrap();
        assert!(rep.all_equal(), "N={n}: {rep:?}");
    }
}
