//! Integration tests: the paper's §4 examples, end to end across every
//! crate (analysis → transformation → ISDG validation → execution).

use vardep_loops::core::{analyze, parallelize};
use vardep_loops::loopir::parse::parse_loop;
use vardep_loops::prelude::*;

fn nest41() -> LoopNest {
    parse_loop(
        "for i1 = -10..=10 { for i2 = -10..=10 {
           A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
         } }",
    )
    .unwrap()
}

fn nest42() -> LoopNest {
    parse_loop(
        "for i1 = -10..=10 { for i2 = -10..=10 {
           A[i1, 3*i2 + 2] = B[i1, i2] + 1;
           B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
         } }",
    )
    .unwrap()
}

#[test]
fn section_41_full_chain() {
    let nest = nest41();
    // EQ41: the analysis artifacts.
    let analysis = analyze(&nest).unwrap();
    assert_eq!(analysis.pdm(), &IMat::from_rows(&[vec![2, 2]]).unwrap());
    assert!(!analysis.is_uniform());
    assert_eq!(analysis.rank(), 1);

    // FIG3: schedule shape.
    let plan = parallelize(&nest).unwrap();
    assert_eq!(plan.doall_count(), 1);
    assert_eq!(plan.partition_count(), 2);
    assert_eq!(
        plan.transformed_pdm(),
        &IMat::from_rows(&[vec![0, 2]]).unwrap()
    );

    // Ground-truth validation of the schedule.
    let g = vardep_loops::isdg::graph::build_all_pairs(&nest, 1_000_000).unwrap();
    let report = vardep_loops::isdg::validate::validate_plan(&g, &plan).unwrap();
    assert!(report.is_sound(), "{:?}", report.violations);
    assert!(report.edges_checked > 100, "expected a dense ISDG");

    // Execution equivalence.
    let rep = vardep_loops::runtime::equivalence::compare(&nest, &plan, 1234).unwrap();
    assert!(rep.equal);
}

#[test]
fn section_42_full_chain() {
    let nest = nest42();
    let analysis = analyze(&nest).unwrap();
    assert_eq!(
        analysis.pdm(),
        &IMat::from_rows(&[vec![2, 1], vec![0, 2]]).unwrap()
    );
    assert!(analysis.is_full_rank());

    let plan = parallelize(&nest).unwrap();
    assert_eq!(plan.doall_count(), 0);
    assert_eq!(plan.partition_count(), 4);

    let g = vardep_loops::isdg::graph::build_all_pairs(&nest, 1_000_000).unwrap();
    let report = vardep_loops::isdg::validate::validate_plan(&g, &plan).unwrap();
    assert!(report.is_sound(), "{:?}", report.violations);

    let rep = vardep_loops::runtime::equivalence::compare(&nest, &plan, 77).unwrap();
    assert!(rep.equal);
}

#[test]
fn figure_3_transformed_distances_are_vertical() {
    let nest = nest41();
    let plan = parallelize(&nest).unwrap();
    let g = vardep_loops::isdg::build(&nest).unwrap();
    assert!(!g.edges().is_empty());
    for e in g.edges() {
        let yf = plan.transformed_index(&e.from).unwrap();
        let yt = plan.transformed_index(&e.to).unwrap();
        let dy = yt.sub(&yf).unwrap();
        assert_eq!(dy[0], 0, "arrow {dy} not perpendicular to the doall axis");
        assert!(dy[1] > 0 && dy[1] % 2 == 0, "inner stride must be even");
    }
}

#[test]
fn figure_5_partition_tiling() {
    let nest = nest42();
    let plan = parallelize(&nest).unwrap();
    let mut sizes = std::collections::HashMap::new();
    for it in nest.iterations().unwrap() {
        let (_, off) = plan.group_of(&it).unwrap();
        *sizes.entry(off).or_insert(0usize) += 1;
    }
    assert_eq!(sizes.len(), 4, "four partitions");
    assert_eq!(
        sizes.values().sum::<usize>(),
        441,
        "partitions tile the space"
    );
    // Roughly equal quarters (the paper's figure shows same-shaped tiles).
    for &s in sizes.values() {
        assert!((90..=130).contains(&s), "unbalanced partition: {s}");
    }
}

#[test]
fn paper_41_codegen_mentions_all_pieces() {
    let nest = nest41();
    let plan = parallelize(&nest).unwrap();
    let text = render_plan(&nest, &plan).unwrap();
    assert!(text.contains("doall y1"));
    assert!(text.contains("step 2"));
    assert!(text.contains("i1 ="), "back-substitution comment present");
}
