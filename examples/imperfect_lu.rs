//! Imperfect nests end to end: an LU-factorization-style loop the
//! perfect-nest seed could not even *express*.
//!
//! ```sh
//! cargo run --example imperfect_lu
//! ```
//!
//! The nest carries statements at **three** depths — a pivot touch-up
//! per `k`, a column scaling per `(k, i)`, and the trailing update per
//! `(k, i, j)`:
//!
//! ```text
//! for k {
//!   A[k, k] = A[k, k] + 1;                       # depth 1
//!   for i = k+1.. {
//!     A[i, k] = A[i, k] * A[k, k];               # depth 2
//!     for j = k+1.. {
//!       A[i, j] = A[i, j] - A[i, k] * A[k, j];   # depth 3
//!     }
//!   }
//! }
//! ```
//!
//! Fission is illegal here — the trailing update at step `k` feeds the
//! pivot and scaling of step `k + 1`, a dependence cycle through the
//! outer loop — so the normalizer **code-sinks**: the pivot and scale
//! statements move into the innermost body guarded on the first inner
//! iterations, producing one perfect kernel with the exact original
//! interleaving. The existing planner, compiled engine, and race
//! checker then handle it unchanged.

use vardep_loops::prelude::*;
use vardep_loops::runtime::checked;
use vardep_loops::runtime::equivalence::compare_program;

/// The LU-style imperfect source at size `n` (matrix is `n × n`; the
/// elimination loop stops at `n − 2` so every inner loop is provably
/// non-empty — the sinking precondition).
fn lu_source(n: i64) -> String {
    format!(
        "for k = 0..={kmax} {{
           A[k, k] = A[k, k] + 1;
           for i = k + 1..={imax} {{
             A[i, k] = A[i, k] * A[k, k];
             for j = k + 1..={imax} {{
               A[i, j] = A[i, j] - A[i, k] * A[k, j];
             }}
           }}
         }}",
        kmax = n - 2,
        imax = n - 1,
    )
}

fn main() {
    let session = Session::new();
    let n = 24;
    let imp = session
        .parse_imperfect(&lu_source(n))
        .expect("LU source parses");
    println!(
        "imperfect LU nest, {n} x {n} ({} statements at 3 depths):\n",
        imp.stmt_count()
    );
    println!("{}", vardep_loops::loopir::pretty::render_imperfect(&imp));

    // --- 1. normalize: sink/fission into perfect kernels -------------
    let normalized = to_perfect_kernels(&imp).expect("normalize");
    println!(
        "normalized into {} perfect kernel(s); the dependence cycle through k \
         forces sinking:",
        normalized.kernels.len()
    );
    for (i, k) in normalized.kernels.iter().enumerate() {
        let guarded = k.nest.body().iter().filter(|s| s.is_guarded()).count();
        println!(
            "  kernel {i}: depth {}, {} statement(s), {} guarded (origin {:?})",
            k.nest.depth(),
            k.nest.body().len(),
            guarded,
            k.origin
        );
    }

    // --- 2. plan: per-kernel analysis + partitioning + DAG stages ----
    let pp = session.plan_program(&imp).expect("program plan");
    println!("\n{}", render_program_plan(&pp).unwrap());

    // --- 3. execute: all four executors, bit-identical ---------------
    let rep = compare_program(&imp, &pp, 2026).expect("execute");
    assert!(
        rep.all_equal(),
        "executors diverged from the imperfect reference: {rep:?}"
    );
    println!(
        "reference ran {} statement executions; kernels ran {} iterations \
         across {} kernel(s) — fissioned-sequential, staged-parallel \
         (interpreted and compiled) all bit-identical to the reference",
        rep.reference_stmts, rep.kernel_iterations, rep.kernels
    );

    // --- 4. validate: the stage-level race checker -------------------
    let mem = Memory::for_imperfect(&imp).unwrap();
    checked::run_program_parallel_checked(&pp, &mem).expect("no races");
    println!("race checker: no cross-unit conflicts within any stage");
}
