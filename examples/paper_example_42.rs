//! The paper's §4.2 walkthrough: full-rank pseudo distance matrix.
//!
//! Two statements exchange data through arrays A and B with variable
//! distances; the merged PDM is the full-rank matrix [[2,1],[0,2]] of
//! eq. (4.12), so Theorem 2 splits the space into det = 4 independent
//! partitions (the paper's Figure 5).
//!
//! ```sh
//! cargo run --example paper_example_42
//! ```

use vardep_loops::prelude::*;

fn main() {
    let session = Session::new();
    let nest = session
        .parse(
            "for i1 = -10..=10 { for i2 = -10..=10 {
           A[i1, 3*i2 + 2] = B[i1, i2] + 1;
           B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
         } }",
        )
        .unwrap();
    println!(
        "§4.2 loop:\n{}",
        vardep_loops::loopir::pretty::render(&nest)
    );

    let analysis = session.analyze(&nest).unwrap();
    println!("PDM (eq. 4.12):\n{}", analysis.pdm());
    assert_eq!(
        analysis.pdm(),
        &IMat::from_rows(&[vec![2, 1], vec![0, 2]]).unwrap()
    );
    assert!(analysis.is_full_rank());
    assert_eq!(analysis.lattice().unwrap().index(), Some(4));

    let plan = session.parallelize(&nest).unwrap();
    assert_eq!(plan.doall_count(), 0, "full rank: no free direction");
    assert_eq!(plan.partition_count(), 4, "det(H) = 4 partitions");
    println!("{}", render_plan(&nest, &plan).unwrap());

    // Figure 5: the four partitions tile the original space and no
    // dependence crosses between them.
    let g = vardep_loops::isdg::build(&nest).unwrap();
    let mut sizes = std::collections::BTreeMap::new();
    for it in nest.iterations().unwrap() {
        let (_, off) = plan.group_of(&it).unwrap();
        *sizes.entry(off.0.clone()).or_insert(0usize) += 1;
    }
    println!("partition sizes: {sizes:?}");
    assert_eq!(sizes.len(), 4);
    assert_eq!(sizes.values().sum::<usize>(), 441);
    for e in g.edges() {
        assert_eq!(
            plan.group_of(&e.from).unwrap(),
            plan.group_of(&e.to).unwrap(),
            "dependence crossed a partition"
        );
    }
    println!("no dependence crosses a partition (Theorem 2 verified on ground truth).");

    let rep = vardep_loops::runtime::equivalence::compare(&nest, &plan, 9).unwrap();
    assert!(rep.equal);
    println!(
        "parallel execution identical to sequential across {} groups.",
        rep.groups
    );
}
