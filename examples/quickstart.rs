//! Quickstart: one [`Session`], four calls — parse, analyze, plan, run.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vardep_loops::prelude::*;

fn main() {
    // A session is the front door to the whole pipeline: one object,
    // one error type, a template cache keyed by nest shape, and a fixed
    // execution schedule.
    let session = Session::new();

    // A loop with *variable* dependence distances: iteration (i1, i2)
    // writes an element that iteration (i1 + k, i2 + k) reads, where k
    // varies across the space. Classic uniform-distance parallelizers
    // give up here; the pseudo distance matrix does not.
    let nest = session
        .parse(
            "for i1 = 0..64 { for i2 = 0..64 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .expect("the DSL source is well-formed");

    // --- 1. analysis: the pseudo distance matrix --------------------
    let analysis = session.analyze(&nest).expect("analysis");
    println!("pseudo distance matrix (every dependence distance is an");
    println!("integer combination of these rows):\n{}", analysis.pdm());
    println!(
        "rank {} of depth {} -> {} loop(s) can be freed by a unimodular transform",
        analysis.rank(),
        analysis.depth(),
        analysis.depth() - analysis.rank()
    );

    // --- 2. transformation: legal unimodular + partitioning ----------
    // Planned through the session's cache: a second call for the same
    // shape would be a cache hit, not another Fourier–Motzkin run.
    let plan = session.parallelize(&nest).expect("planning");
    println!("\ntransformed program:\n");
    println!("{}", render_plan(&nest, &plan).unwrap());

    // --- 3. execution: doall over the independent groups -------------
    // `run` instantiates, seeds memory deterministically, and executes
    // on the session's pool in one call.
    let outcome = session.run(&nest, &[], 2024).expect("parallel run");

    // Pin the result to a fresh sequential reference run.
    let mut reference = Memory::for_nest(&nest).unwrap();
    reference.init_deterministic(2024);
    let seq = run_sequential(&nest, &reference).unwrap();
    assert_eq!(outcome.iterations, seq);
    assert_eq!(
        outcome.instance.memory.snapshot(),
        reference.snapshot(),
        "results must be identical"
    );
    println!(
        "executed {} iterations sequentially and in parallel — results identical.",
        outcome.iterations
    );
}
