//! Quickstart: parse a loop, analyze it, transform it, run it in parallel.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vardep_loops::prelude::*;

fn main() {
    // A loop with *variable* dependence distances: iteration (i1, i2)
    // writes an element that iteration (i1 + k, i2 + k) reads, where k
    // varies across the space. Classic uniform-distance parallelizers
    // give up here; the pseudo distance matrix does not.
    let nest = parse_loop(
        "for i1 = 0..64 { for i2 = 0..64 {
           A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
         } }",
    )
    .expect("the DSL source is well-formed");

    // --- 1. analysis: the pseudo distance matrix --------------------
    let analysis = analyze(&nest).expect("analysis");
    println!("pseudo distance matrix (every dependence distance is an");
    println!("integer combination of these rows):\n{}", analysis.pdm());
    println!(
        "rank {} of depth {} -> {} loop(s) can be freed by a unimodular transform",
        analysis.rank(),
        analysis.depth(),
        analysis.depth() - analysis.rank()
    );

    // --- 2. transformation: legal unimodular + partitioning ----------
    let plan = parallelize(&nest).expect("planning");
    println!("\ntransformed program:\n");
    println!("{}", render_plan(&nest, &plan).unwrap());

    // --- 3. execution: rayon doall over the independent groups -------
    let mut seq = Memory::for_nest(&nest).unwrap();
    let mut par = Memory::for_nest(&nest).unwrap();
    seq.init_deterministic(2024);
    par.init_deterministic(2024);
    let n1 = run_sequential(&nest, &seq).unwrap();
    let n2 = run_parallel(&nest, &plan, &par).unwrap();
    assert_eq!(n1, n2);
    assert_eq!(seq.snapshot(), par.snapshot(), "results must be identical");
    println!("executed {n1} iterations sequentially and in parallel — results identical.");
}
