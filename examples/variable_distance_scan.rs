//! Variable-distance one-dimensional scans: `A[2i] = A[i]` and friends.
//!
//! The introduction's motivating pattern: the distance between the write
//! `A[2i]` and its future read grows with `i` — no constant distance
//! vector exists, yet the dependence structure is perfectly regular. The
//! PDM captures it as a rank-1 lattice; the odd-indexed half of the array
//! is untouched and the dependence chains thin out geometrically.
//!
//! ```sh
//! cargo run --example variable_distance_scan
//! ```

use vardep_loops::prelude::*;

fn main() {
    let session = Session::new();
    let nest = session
        .parse("for i = 1..=64 { A[2*i] = A[i] + 1; }")
        .unwrap();

    let analysis = session.analyze(&nest).unwrap();
    println!("A[2i] = A[i]: PDM = {:?}", analysis.pdm().row(0));
    // The lattice is all of Z (distances d = i take every value), so no
    // transformation parallelism exists at the lattice level...
    assert_eq!(analysis.pdm(), &IMat::from_rows(&[vec![1]]).unwrap());

    // ...but the ground-truth ISDG shows the real structure: chains
    // 1 -> 2 -> 4 -> 8 ... of *logarithmic* length.
    let g = vardep_loops::isdg::build(&nest).unwrap();
    let m = vardep_loops::isdg::metrics::metrics(&g);
    println!(
        "ISDG: {} iterations, {} dependent, {} chains, critical path {} (log-length chains)",
        m.iterations, m.dependent, m.components, m.critical_path
    );
    assert!(m.critical_path <= 7, "chains are log(N)");

    // Contrast with the strided variable-distance loop where the PDM DOES
    // expose parallelism: every distance a multiple of 3.
    let strided = session
        .parse("for i = 0..=63 { A[3*i + 9] = A[3*i] + 1; }")
        .unwrap();
    let a2 = session.analyze(&strided).unwrap();
    println!("\nA[3i+9] = A[3i]: PDM = {:?}", a2.pdm().row(0));
    assert_eq!(a2.pdm(), &IMat::from_rows(&[vec![3]]).unwrap());
    let plan = session.parallelize(&strided).unwrap();
    assert_eq!(plan.partition_count(), 3);
    println!("three independent partitions found:");
    println!("{}", render_plan(&strided, &plan).unwrap());

    let rep = vardep_loops::runtime::equivalence::compare(&strided, &plan, 5).unwrap();
    assert!(rep.equal);
    println!("verified: {} groups, identical results.", rep.groups);
}
