//! Head-to-head: this paper's PDM method vs the Table-1 baselines on a
//! user-supplied loop (or the built-in suite).
//!
//! ```sh
//! cargo run --example method_shootout
//! cargo run --example method_shootout -- "for i = 0..=20 { A[2*i] = A[i] + 1; }"
//! ```

use pdm_baselines::report::Parallelizer;
use vardep_loops::prelude::*;

fn main() {
    let methods: Vec<Box<dyn Parallelizer>> = vec![
        Box::new(pdm_baselines::banerjee::Banerjee),
        Box::new(pdm_baselines::dhollander::DHollander),
        Box::new(pdm_baselines::wolf_lam::WolfLam),
        Box::new(pdm_baselines::shang::ShangBdv),
        Box::new(pdm_baselines::pdm_method::PdmMethod),
    ];

    let session = Session::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(src) = args.first() {
        let nest = session.parse(src).expect("loop parses");
        run_one(&session, "user loop", &nest, &methods);
        return;
    }

    for (name, nest) in pdm_baselines::suite::all(16) {
        run_one(&session, name, &nest, &methods);
    }
}

fn run_one(session: &Session, name: &str, nest: &LoopNest, methods: &[Box<dyn Parallelizer>]) {
    println!("=== {name} ===");
    println!("{}", vardep_loops::loopir::pretty::render(nest));
    for m in methods {
        match m.analyze(nest) {
            Ok(r) => println!("  {}", r.summary()),
            Err(e) => println!("  {:<12} error: {e}", m.name()),
        }
    }
    // And the PDM plan actually executes correctly:
    let plan = session.parallelize(nest).expect("plan");
    let rep = vardep_loops::runtime::equivalence::compare(nest, &plan, 1).expect("run");
    println!(
        "  [exec] {} iterations, {} groups, identical: {}\n",
        rep.iterations, rep.groups, rep.equal
    );
    assert!(rep.equal);
}
