//! Template serving: plan one kernel *shape* once, answer many sizes.
//!
//! ```sh
//! cargo run --release --example template_serving
//! ```
//!
//! The paper's transformation is valid for any loop bounds, so a service
//! that receives the same kernel at many problem sizes should not re-run
//! dependence testing and Fourier–Motzkin per request. This example is
//! that service in miniature: a [`Session`] whose sharded single-flight
//! cache holds one [`PlanTemplate`] per kernel shape, and per-request
//! instantiation that only evaluates affine bound rows. (The full
//! networked version of this loop is `PlanServer` — see the
//! `vardep_loops::service` crate docs for the wire protocol.)

use std::time::Instant;
use vardep_loops::prelude::*;

fn main() {
    let session = Session::new();

    // The kernel arrives symbolically: N is a named parameter, kept as a
    // live column of the loop bounds instead of substituted at parse.
    let shape = session
        .parse_symbolic(
            "for i1 = 0..N { for i2 = 0..N {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
            &["N"],
        )
        .expect("the DSL source is well-formed");

    // --- first request plans the shape ------------------------------
    let t0 = Instant::now();
    let template = session.plan(&shape).expect("planning");
    let planned_in = t0.elapsed();
    println!(
        "planned shape once in {:.1} us: {} doall loop(s), {} partition(s), {} parameter(s)",
        planned_in.as_secs_f64() * 1e6,
        template.doall_count(),
        template.partition_count(),
        template.param_names().len(),
    );

    // --- requests at many sizes -------------------------------------
    for n in [8i64, 32, 64, 128] {
        let t1 = Instant::now();
        let mut inst = session
            .instantiate(&shape, &[("N", n)])
            .expect("instantiate");
        let instantiated_in = t1.elapsed();

        inst.memory.init_deterministic(2024);
        let ran = session.execute(&inst).unwrap();

        // Pin the instantiated plan to a fresh sequential run.
        let mut reference = Memory::for_nest(&inst.nest).unwrap();
        reference.init_deterministic(2024);
        let seq = run_sequential(&inst.nest, &reference).unwrap();
        assert_eq!(ran, seq);
        assert_eq!(
            inst.memory.snapshot(),
            reference.snapshot(),
            "instantiated plan must execute bit-identically"
        );

        println!(
            "N = {n:>3}: instantiated in {:>6.1} us (no FM, no analysis), \
             ran {ran} iterations — identical to sequential",
            instantiated_in.as_secs_f64() * 1e6,
        );
    }

    let stats = session.cache_stats();
    println!(
        "cache: {} template(s), {} hit(s), {} planned",
        stats.entries, stats.hits, stats.planned
    );
    assert_eq!(stats.planned, 1, "one shape must plan exactly once");
}
