//! Uniform distances as a special case: stencils and strided recurrences.
//!
//! Corollary 5 of the paper: a constant distance vector is the special
//! case of the PDM where the homogeneous part vanishes. This example runs
//! the pipeline over three classic uniform kernels and shows what the
//! lattice view adds (partitioning) compared to what it can't (the dense
//! (1,0)/(0,1) stencil genuinely has no lattice parallelism — wavefront
//! methods are the right tool there, as Table 1 records).
//!
//! ```sh
//! cargo run --example stencil_wavefront
//! ```

use vardep_loops::prelude::*;

fn show(session: &Session, name: &str, src: &str) {
    let nest = session.parse(src).unwrap();
    let analysis = session.analyze(&nest).unwrap();
    let plan = session.parallelize(&nest).unwrap();
    println!("=== {name} ===");
    println!("PDM:\n{}", analysis.pdm());
    println!(
        "uniform: {}   doall: {}   partitions: {}",
        analysis.is_uniform(),
        plan.doall_count(),
        plan.partition_count()
    );
    let rep = vardep_loops::runtime::equivalence::compare(&nest, &plan, 3).unwrap();
    assert!(rep.equal);
    println!(
        "verified on {} iterations / {} groups\n",
        rep.iterations, rep.groups
    );
}

fn main() {
    let session = Session::new();

    // Dense first-order stencil: PDM = I, nothing to partition — the
    // honest negative case (wavefront methods win here; see Table 1).
    show(
        &session,
        "2-D stencil A[i,j] += A[i-1,j] + A[i,j-1]",
        "for i = 1..=40 { for j = 1..=40 { A[i, j] = A[i - 1, j] + A[i, j - 1]; } }",
    );

    // Strided recurrences: the lattice has index 6 -> six independent
    // interleaved computations, found automatically.
    show(
        &session,
        "strided pair A[i,j] = A[i-2,j]; B[i,j] = B[i,j-3]",
        "for i = 2..=40 { for j = 3..=40 {
           A[i, j] = A[i - 2, j] + 1;
           B[i, j] = B[i, j - 3] + 1;
         } }",
    );

    // Zero-column case: dependence only along i, the j loop is doall
    // directly (Lemma 1).
    show(
        &session,
        "row recurrence A[i,j] = A[i-1,j]",
        "for i = 1..=40 { for j = 0..=40 { A[i, j] = A[i - 1, j] + 1; } }",
    );

    // Diagonal chain with stride 2: one doall direction AND two
    // partitions — the combination the paper's machinery is built for.
    show(
        &session,
        "diagonal stride-2 A[i,j] = A[i-2,j-2]",
        "for i = 2..=40 { for j = 2..=40 { A[i, j] = A[i - 2, j - 2] + 1; } }",
    );
}
