//! The paper's §4.1 walkthrough: non-full-rank pseudo distance matrix.
//!
//! Reproduces, step by step, the analysis the paper performs on its first
//! example (subscripts reconstructed to the paper's reported artifacts —
//! see DESIGN.md): dependence equations → echelon solve → distance
//! lattice → PDM → Algorithm 1 → partitioning → transformed code →
//! ISDG before/after (Figures 2 and 3).
//!
//! ```sh
//! cargo run --example paper_example_41
//! ```

use vardep_loops::prelude::*;

fn main() {
    let session = Session::new();
    let nest = session
        .parse(
            "for i1 = -10..=10 { for i2 = -10..=10 {
           A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
         } }",
        )
        .unwrap();
    println!(
        "§4.1 loop:\n{}",
        vardep_loops::loopir::pretty::render(&nest)
    );

    // Per-pair dependence equations and distance lattices (eq. 4.1-4.6).
    let analysis = session.analyze(&nest).unwrap();
    for (k, pair) in analysis.pairs().iter().enumerate() {
        println!(
            "pair {k}: stmts ({}, {}), solvable: {}",
            pair.stmt_a, pair.stmt_b, pair.lattice.solvable
        );
        if pair.lattice.solvable {
            println!(
                "  particular d0 = {:?}, generators:\n{}",
                pair.lattice
                    .particular
                    .as_ref()
                    .map(|d| d.as_slice().to_vec()),
                pair.lattice.generators
            );
        }
    }

    // The merged PDM (eq. 4.7).
    println!("PDM (HNF of all generators):\n{}", analysis.pdm());
    assert_eq!(analysis.pdm(), &IMat::from_rows(&[vec![2, 2]]).unwrap());
    assert!(
        !analysis.is_full_rank(),
        "rank 1 < depth 2: Algorithm 1 applies"
    );

    // Algorithm 1 (eq. 4.8): a legal unimodular T zeroing one column.
    let plan = session.parallelize(&nest).unwrap();
    println!("legal unimodular transformation T:\n{}", plan.transform());
    println!(
        "H*T (leading zero column = outer doall loop):\n{}",
        plan.transformed_pdm()
    );
    assert_eq!(plan.doall_count(), 1);

    // Theorem 2 on the remaining full-rank block: det = 2 partitions.
    assert_eq!(plan.partition_count(), 2);
    println!("{}", render_plan(&nest, &plan).unwrap());

    // Figures 2/3: dependence structure before and after.
    let g = vardep_loops::isdg::build(&nest).unwrap();
    let m = vardep_loops::isdg::metrics::metrics(&g);
    println!(
        "Figure 2 metrics: {} iterations, {} dependent, {} chains, critical path {}",
        m.iterations, m.dependent, m.components, m.critical_path
    );
    // After the transform every arrow is vertical (zero component along
    // the parallel axis) — the paper's Figure 3 observation.
    let vertical = g.edges().iter().all(|e| {
        let dy = plan
            .transformed_index(&e.to)
            .unwrap()
            .sub(&plan.transformed_index(&e.from).unwrap())
            .unwrap();
        dy[0] == 0
    });
    assert!(vertical);
    println!("Figure 3 property verified: all transformed arrows ⟂ parallel axis.");

    // And the schedule actually runs.
    let rep = vardep_loops::runtime::equivalence::compare(&nest, &plan, 1).unwrap();
    assert!(rep.equal);
    println!(
        "executed: {} iterations in {} independent groups — identical results.",
        rep.iterations, rep.groups
    );
}
